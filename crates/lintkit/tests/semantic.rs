//! Integration suite for the workspace-level semantic lints.
//!
//! Every fixture here is a miniature workspace fed to
//! [`runner::check_tree`] — the same entry point `udlint` uses — so
//! the tests cover the whole pipeline: parse, symbol graph, call
//! graph, semantic passes, and shared suppression resolution.
//!
//! The first test is the acceptance regression for this layer: a
//! violation the old token-level pass *provably misses* (each file is
//! individually clean) that the semantic pass catches across files.

use lintkit::runner::{check_source, check_tree, RunReport};

fn tree(files: &[(&str, &str)]) -> RunReport {
    let inputs: Vec<(String, String)> =
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    check_tree(&inputs, false)
}

fn lints_of(r: &RunReport) -> Vec<(&str, &str, u32)> {
    r.diagnostics.iter().map(|d| (d.lint.as_str(), d.path.as_str(), d.line)).collect()
}

// ---------------------------------------------------------------- wallclock

const CLOCK_HELPER: &str = "pub fn now_ms() -> u64 {\n\
    let _t = std::time::Instant::now();\n    0\n}\n";
const CLOCK_CALLER: &str = "use tracekit::util::now_ms;\n\
    pub fn serve() -> u64 {\n    now_ms()\n}\n";

/// The cross-file violation class the token pass cannot see: the
/// caller's file never mentions a clock, so linting it alone is clean —
/// but the workspace pass follows the call edge into the helper crate.
#[test]
fn transitive_wallclock_catches_what_the_token_pass_misses() {
    // Old token-level view of the caller file: provably clean.
    let solo = check_source("crates/core/src/hot.rs", CLOCK_CALLER, false);
    assert!(
        solo.diagnostics.is_empty(),
        "token pass must miss the cross-file read: {:?}",
        solo.diagnostics
    );

    // Workspace view: the caller is flagged with the call chain.
    let r = tree(&[
        ("crates/tracekit/src/util.rs", CLOCK_HELPER),
        ("crates/core/src/hot.rs", CLOCK_CALLER),
    ]);
    let transitive: Vec<_> =
        r.diagnostics.iter().filter(|d| d.lint == "transitive-wallclock").collect();
    assert_eq!(transitive.len(), 1, "{:?}", lints_of(&r));
    assert_eq!(transitive[0].path, "crates/core/src/hot.rs");
    assert!(transitive[0].message.contains("serve"), "{}", transitive[0].message);
    assert!(transitive[0].message.contains("now_ms"), "chain names the reader");
    // The direct reader stays the token lint's finding, not ours.
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.lint == "wallclock-in-hot-path" && d.path == "crates/tracekit/src/util.rs"),
        "{:?}",
        lints_of(&r)
    );
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| d.lint == "transitive-wallclock" && d.path == "crates/tracekit/src/util.rs"),
        "direct readers are not double-reported"
    );
}

#[test]
fn wall_module_is_a_quarantine_boundary() {
    // A clock read inside tracekit::wall taints nobody.
    let r = tree(&[
        (
            "crates/tracekit/src/wall.rs",
            "pub fn stamp() -> u64 { let _ = std::time::Instant::now(); 0 }\n",
        ),
        (
            "crates/core/src/hot.rs",
            "use tracekit::wall::stamp;\npub fn serve() -> u64 { stamp() }\n",
        ),
    ]);
    assert!(!r.diagnostics.iter().any(|d| d.lint == "transitive-wallclock"), "{:?}", lints_of(&r));
}

#[test]
fn test_functions_do_not_propagate_taint() {
    let r = tree(&[
        ("crates/tracekit/src/util.rs", CLOCK_HELPER),
        (
            "crates/core/src/hot.rs",
            "use tracekit::util::now_ms;\n#[cfg(test)]\nmod tests {\n    \
             fn bench_helper() -> u64 { super::now_ms() }\n}\n",
        ),
    ]);
    assert!(!r.diagnostics.iter().any(|d| d.lint == "transitive-wallclock"), "{:?}", lints_of(&r));
}

// ----------------------------------------------------------------- io sites

#[test]
fn uncovered_io_site_fires_only_outside_the_checked_closure() {
    let src = "\
pub struct Store { faults: FaultPlan }\n\
impl Store {\n\
    pub fn guarded(&self, f: &std::fs::File) -> std::io::Result<()> {\n\
        self.faults.check(Site::StoreFlush, \"k\")?;\n\
        self.raw(f)\n\
    }\n\
    fn raw(&self, f: &std::fs::File) -> std::io::Result<()> {\n\
        f.write_all(&[0])\n\
    }\n\
    pub fn orphan(&self, f: &std::fs::File) -> std::io::Result<()> {\n\
        f.sync_all()\n\
    }\n\
}\n";
    let r = tree(&[("crates/storekit/src/newpath.rs", src)]);
    let hits: Vec<_> = r.diagnostics.iter().filter(|d| d.lint == "uncovered-io-site").collect();
    assert_eq!(hits.len(), 1, "{:?}", lints_of(&r));
    assert!(hits[0].message.contains("orphan"), "{}", hits[0].message);
    assert!(hits[0].message.contains("sync_all"));
    assert!(
        !r.diagnostics.iter().any(|d| d.message.contains("`raw`")),
        "fns below a check are covered: {:?}",
        lints_of(&r)
    );
}

#[test]
fn io_outside_storekit_is_out_of_scope() {
    // tracekit's trace sink writes files too — deliberately outside the
    // durability contract (it is observability plumbing, not state).
    let r = tree(&[(
        "crates/tracekit/src/sink.rs",
        "pub fn dump(f: &std::fs::File) { let _ = f.sync_all(); }\n",
    )]);
    assert!(!r.diagnostics.iter().any(|d| d.lint == "uncovered-io-site"), "{:?}", lints_of(&r));
}

#[test]
fn semantic_findings_accept_suppressions_like_any_other() {
    let src = "\
pub fn orphan(f: &std::fs::File) -> std::io::Result<()> {\n\
    // udlint: allow(uncovered-io-site) -- fixture: documented pre-state window\n\
    f.sync_all()\n\
}\n";
    let r = tree(&[("crates/storekit/src/newpath.rs", src)]);
    assert!(!r.diagnostics.iter().any(|d| d.lint == "uncovered-io-site"), "{:?}", lints_of(&r));
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].diag.lint, "uncovered-io-site");

    // And an unused semantic suppression is flagged, same as token ones.
    let clean = "\
pub fn nothing() {}\n\
// udlint: allow(uncovered-io-site) -- fixture: stale reason\n\
pub fn also_nothing() {}\n";
    let r = tree(&[("crates/storekit/src/newpath.rs", clean)]);
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.lint == "suppression-syntax" && d.message.contains("unused")),
        "{:?}",
        lints_of(&r)
    );
}

// -------------------------------------------------------------- registries

const METRICS_FIXTURE: &str = "\
registry_enum! {\n\
    pub enum Metric {\n\
        Used => \"m.used\",\n\
        Dead => \"m.dead\",\n\
        TestOnly => \"m.test_only\",\n\
    }\n\
}\n";

#[test]
fn dead_registry_entry_finds_unrecorded_variants() {
    let r = tree(&[
        ("crates/tracekit/src/metrics.rs", METRICS_FIXTURE),
        (
            "crates/core/src/ingest.rs",
            "pub fn record(reg: &MetricsRegistry) { reg.add(Metric::Used, 1); }\n\
             #[cfg(test)]\nmod tests {\n    fn t(reg: &MetricsRegistry) { \
             reg.add(Metric::TestOnly, 1); }\n}\n",
        ),
    ]);
    let dead: Vec<_> = r.diagnostics.iter().filter(|d| d.lint == "dead-registry-entry").collect();
    let names: Vec<&str> = dead.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(dead.len(), 2, "{names:?}");
    assert!(names.iter().any(|m| m.contains("Metric::Dead")), "{names:?}");
    assert!(
        names.iter().any(|m| m.contains("Metric::TestOnly")),
        "test-only recording does not count: {names:?}"
    );
    assert!(!names.iter().any(|m| m.contains("Metric::Used")), "{names:?}");
    assert!(dead.iter().all(|d| d.path == "crates/tracekit/src/metrics.rs"));
}

#[test]
fn references_inside_metrics_rs_do_not_count_as_liveness() {
    // The generated ALL/name tables (and a hand-written kind() match)
    // mention every variant; only *recording* sites elsewhere count.
    let with_selfref = format!(
        "{METRICS_FIXTURE}\nimpl Metric {{\n    pub fn kind(self) -> u32 {{\n        \
         match self {{ Metric::Dead => 1, _ => 0 }}\n    }}\n}}\n"
    );
    let r = tree(&[("crates/tracekit/src/metrics.rs", with_selfref.as_str())]);
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.lint == "dead-registry-entry" && d.message.contains("Metric::Dead")),
        "{:?}",
        lints_of(&r)
    );
}

// ------------------------------------------------------------ meter mirror

const METER_FIXTURE: &str =
    "pub struct ResourceMeter {\n    pub pages_read: u64,\n    pub slm_calls: u64,\n}\n";

#[test]
fn meter_mirror_reports_asymmetric_fields() {
    let engine = "\
impl UnifiedEngine {\n\
    fn answer_ladder(&self, meter: &mut ResourceMeter) {\n\
        meter.pages_read += 1;\n\
        meter.slm_calls += 1;\n\
    }\n\
    fn answer_planned(&self, meter: &mut ResourceMeter) {\n\
        self.helper(meter);\n\
    }\n\
    fn helper(&self, meter: &mut ResourceMeter) {\n\
        meter.pages_read += 1;\n\
    }\n\
}\n";
    let r = tree(&[
        ("crates/tracekit/src/meter.rs", METER_FIXTURE),
        ("crates/core/src/engine.rs", engine),
    ]);
    let hits: Vec<_> = r.diagnostics.iter().filter(|d| d.lint == "meter-mirror").collect();
    assert_eq!(hits.len(), 1, "{:?}", lints_of(&r));
    assert!(hits[0].message.contains("slm_calls"), "{}", hits[0].message);
    assert!(hits[0].message.contains("answer_planned"), "{}", hits[0].message);
    assert!(
        !hits[0].message.contains("pages_read"),
        "writes through helpers count via the call closure: {}",
        hits[0].message
    );
}

#[test]
fn meter_mirror_is_silent_when_paths_match() {
    let engine = "\
impl UnifiedEngine {\n\
    fn answer_ladder(&self, meter: &mut ResourceMeter) { self.helper(meter); }\n\
    fn answer_planned(&self, meter: &mut ResourceMeter) {\n\
        meter.pages_read += 1;\n        meter.slm_calls = 3;\n\
    }\n\
    fn helper(&self, meter: &mut ResourceMeter) {\n\
        meter.pages_read += 1;\n        meter.slm_calls += 1;\n\
    }\n\
}\n";
    let r = tree(&[
        ("crates/tracekit/src/meter.rs", METER_FIXTURE),
        ("crates/core/src/engine.rs", engine),
    ]);
    assert!(!r.diagnostics.iter().any(|d| d.lint == "meter-mirror"), "{:?}", lints_of(&r));
}

#[test]
fn meter_mirror_ignores_comparisons() {
    let engine = "\
impl UnifiedEngine {\n\
    fn answer_ladder(&self, meter: &mut ResourceMeter) { meter.pages_read += 1; }\n\
    fn answer_planned(&self, meter: &mut ResourceMeter) {\n\
        meter.pages_read += 1;\n\
        if meter.slm_calls == 0 {}\n\
    }\n\
}\n";
    let r = tree(&[
        ("crates/tracekit/src/meter.rs", METER_FIXTURE),
        ("crates/core/src/engine.rs", engine),
    ]);
    assert!(
        !r.diagnostics.iter().any(|d| d.lint == "meter-mirror"),
        "`== 0` is a read, not a write: {:?}",
        lints_of(&r)
    );
}

// ------------------------------------------------------------- determinism

#[test]
fn check_tree_output_is_independent_of_input_order() {
    let files = [
        ("crates/tracekit/src/util.rs", CLOCK_HELPER),
        ("crates/core/src/hot.rs", CLOCK_CALLER),
        ("crates/tracekit/src/metrics.rs", METRICS_FIXTURE),
        (
            "crates/storekit/src/newpath.rs",
            "pub fn orphan(f: &std::fs::File) { let _ = f.sync_all(); }\n",
        ),
    ];
    let a = tree(&files).render_json();
    let mut rev = files;
    rev.reverse();
    let b = tree(&rev).render_json();
    assert_eq!(a, b, "sorted, byte-identical reports regardless of walk order");
}
