//! Workspace walk, suppression resolution, and report rendering.
//!
//! The walk is deterministic: directory entries are sorted by name,
//! `target/` and dot-directories are skipped, and every emitted path is
//! workspace-relative with `/` separators — so the JSON report for a
//! given tree is byte-identical across runs and machines.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::diag::{Diagnostic, Suppressed};
use crate::manifest::lint_manifest;
use crate::passes::{file_scope, registry, FileScope};
use crate::semantic;
use crate::source::{SourceFile, Suppression};
use crate::symbols::Workspace;

/// The outcome of linting a tree (or a single source, in tests).
#[derive(Default)]
pub struct RunReport {
    /// Unsuppressed findings, sorted by `(path, line, lint, message)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a suppression comment, same order.
    pub suppressed: Vec<Suppressed>,
}

impl RunReport {
    fn finish(mut self) -> RunReport {
        self.diagnostics.sort();
        self.diagnostics.dedup();
        self.suppressed.sort_by(|a, b| a.diag.cmp(&b.diag));
        self
    }

    /// Human-readable rendering (one line per finding, summary last).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_text());
            out.push('\n');
        }
        for s in &self.suppressed {
            out.push_str(&format!(
                "{}:{}: [{}] suppressed -- {}\n",
                s.diag.path, s.diag.line, s.diag.lint, s.reason
            ));
        }
        out.push_str(&format!(
            "udlint: {} diagnostic(s), {} suppressed\n",
            self.diagnostics.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable rendering: stable field order, sorted entries,
    /// no timestamps or absolute paths — byte-identical across runs.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            out.push_str(&d.to_json());
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            let mut j = s.diag.to_json();
            j.pop(); // replace trailing `}` with the reason field
            j.push_str(&format!(",\"reason\":\"{}\"}}", crate::diag::json_escape(&s.reason)));
            out.push_str(&j);
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"counts\": {{\"diagnostics\": {}, \"suppressed\": {}}}\n}}\n",
            self.diagnostics.len(),
            self.suppressed.len()
        ));
        out
    }
}

/// Whether `lint` is a registered lint name.
fn known_lint(lint: &str) -> bool {
    crate::LINTS.iter().any(|(name, _)| *name == lint)
}

/// Applies suppressions to raw findings: matching `(line, lint)` pairs
/// move to `suppressed`; malformed, unknown-lint, and unused suppressions
/// become `suppression-syntax` diagnostics (an unused suppression is a
/// stale reason waiting to mislead someone).
fn resolve(
    rel_path: &str,
    raw: Vec<Diagnostic>,
    suppressions: &[Suppression],
    bad: &[(u32, String)],
    line_in_test: impl Fn(u32) -> bool,
    active: impl Fn(&str) -> bool,
    report: &mut RunReport,
) {
    let mut used = vec![false; suppressions.len()];
    for d in raw {
        let hit = suppressions.iter().position(|s| s.target_line == d.line && s.lint == d.lint);
        match hit {
            Some(i) => {
                used[i] = true;
                report
                    .suppressed
                    .push(Suppressed { diag: d, reason: suppressions[i].reason.clone() });
            }
            None => report.diagnostics.push(d),
        }
    }
    for (line, problem) in bad {
        report.diagnostics.push(Diagnostic {
            path: rel_path.to_string(),
            line: *line,
            lint: "suppression-syntax".into(),
            message: problem.clone(),
        });
    }
    for (i, s) in suppressions.iter().enumerate() {
        if !known_lint(&s.lint) {
            report.diagnostics.push(Diagnostic {
                path: rel_path.to_string(),
                line: s.comment_line,
                lint: "suppression-syntax".into(),
                message: format!("suppression names unknown lint `{}`", s.lint),
            });
        } else if !used[i] && active(&s.lint) && !line_in_test(s.comment_line) {
            report.diagnostics.push(Diagnostic {
                path: rel_path.to_string(),
                line: s.comment_line,
                lint: "suppression-syntax".into(),
                message: format!(
                    "unused suppression: no `{}` diagnostic on line {}",
                    s.lint, s.target_line
                ),
            });
        }
    }
}

/// Lints one Rust source in engine scope. Used by the runner and directly
/// by the adversarial test-suite.
pub fn check_rust_source(rel_path: &str, src: &str, pedantic: bool, report: &mut RunReport) {
    let FileScope::Engine { krate } = file_scope(rel_path) else { return };
    let file = SourceFile::parse(rel_path, src);
    let mut raw = Vec::new();
    for pass in registry(pedantic) {
        if pass.applies(&krate, rel_path) {
            pass.run(&file, &mut raw);
        }
    }
    let active_lints: Vec<&'static str> = registry(pedantic)
        .iter()
        .filter(|p| p.applies(&krate, rel_path))
        .map(|p| p.lint())
        .collect();
    let bad: Vec<(u32, String)> =
        file.bad_suppressions.iter().map(|b| (b.line, b.problem.clone())).collect();
    resolve(
        rel_path,
        raw,
        &file.suppressions,
        &bad,
        |line| file.toks.iter().any(|t| t.line == line && t.in_test),
        |lint| active_lints.contains(&lint),
        report,
    );
}

/// Lints one manifest (every `Cargo.toml` is in scope — the hermetic
/// policy binds tooling crates too).
pub fn check_manifest_source(rel_path: &str, src: &str, report: &mut RunReport) {
    let (raw, suppressions) = lint_manifest(rel_path, src);
    resolve(rel_path, raw, &suppressions, &[], |_| false, |_| true, report);
}

/// Lints a whole workspace given in memory as `(rel_path, source)`
/// pairs: file-level token passes, then the workspace-level semantic
/// passes over the symbol graph, with one shared suppression resolution
/// per file (so a suppression can silence either kind, and unused ones
/// are detected across both).
pub fn check_tree(inputs: &[(String, String)], pedantic: bool) -> RunReport {
    let mut report = RunReport::default();
    let mut rust: Vec<(String, String)> = Vec::new();
    for (rel_path, src) in inputs {
        if rel_path.ends_with(".rs") {
            rust.push((rel_path.clone(), src.clone()));
        } else {
            check_manifest_source(rel_path, src, &mut report);
        }
    }

    let ws = Workspace::build(&rust);
    let mut sem_by_path: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for pass in semantic::registry() {
        let mut raw = Vec::new();
        pass.run(&ws, &mut raw);
        for d in raw {
            sem_by_path.entry(d.path.clone()).or_default().push(d);
        }
    }
    let sem_lints: Vec<&'static str> = semantic::registry().iter().map(|p| p.lint()).collect();

    for wsf in &ws.files {
        let rel_path = wsf.file.rel_path.clone();
        let mut raw = Vec::new();
        for pass in registry(pedantic) {
            if pass.applies(&wsf.krate, &rel_path) {
                pass.run(&wsf.file, &mut raw);
            }
        }
        raw.extend(sem_by_path.remove(&rel_path).unwrap_or_default());
        let mut active_lints: Vec<&'static str> = registry(pedantic)
            .iter()
            .filter(|p| p.applies(&wsf.krate, &rel_path))
            .map(|p| p.lint())
            .collect();
        active_lints.extend(&sem_lints);
        let bad: Vec<(u32, String)> =
            wsf.file.bad_suppressions.iter().map(|b| (b.line, b.problem.clone())).collect();
        resolve(
            &rel_path,
            raw,
            &wsf.file.suppressions,
            &bad,
            |line| wsf.file.toks.iter().any(|t| t.line == line && t.in_test),
            |lint| active_lints.contains(&lint),
            &mut report,
        );
    }
    // Defensive: a semantic diagnostic pointing at a path outside the
    // engine file set cannot be suppressed, but must not vanish either.
    for (_, diags) in sem_by_path {
        report.diagnostics.extend(diags);
    }
    report.finish()
}

/// Reads every lintable file under `root` into memory.
fn read_tree(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_files(root, Path::new(""), &mut files)?;
    files.sort();
    let mut inputs = Vec::new();
    for rel in &files {
        let Ok(src) = fs::read_to_string(root.join(rel)) else {
            continue; // non-UTF-8 or unreadable: nothing for a lexer to do
        };
        inputs.push((rel.replace('\\', "/"), src));
    }
    Ok(inputs)
}

/// Walks `root` and lints every `.rs` and `Cargo.toml` file in scope —
/// token passes, then the semantic passes over the symbol graph.
pub fn run(root: &Path, pedantic: bool) -> std::io::Result<RunReport> {
    Ok(check_tree(&read_tree(root)?, pedantic))
}

/// Builds (only) the workspace symbol graph for `root` — backs
/// `udlint --dump-graph`.
pub fn build_workspace(root: &Path) -> std::io::Result<Workspace> {
    let inputs = read_tree(root)?;
    let rust: Vec<(String, String)> =
        inputs.into_iter().filter(|(p, _)| p.ends_with(".rs")).collect();
    Ok(Workspace::build(&rust))
}

/// Recursively collects lintable files, skipping `target/` and
/// dot-directories, with entries visited in sorted order.
fn collect_files(root: &Path, rel: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let dir = root.join(rel);
    let mut entries: Vec<_> = fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    entries.sort();
    for name in entries {
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let child_rel = if rel.as_os_str().is_empty() {
            Path::new(&name).to_path_buf()
        } else {
            rel.join(&name)
        };
        let child = root.join(&child_rel);
        if child.is_dir() {
            collect_files(root, &child_rel, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(child_rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Convenience for tests: lints a single Rust source and returns the
/// finished report.
pub fn check_source(rel_path: &str, src: &str, pedantic: bool) -> RunReport {
    let mut report = RunReport::default();
    check_rust_source(rel_path, src, pedantic, &mut report);
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_silences_matching_lint_only() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap() // udlint: allow(unwrap-in-core) -- checked by caller\n\
                   }\n";
        let r = check_source("crates/core/src/f.rs", src, false);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "checked by caller");
    }

    #[test]
    fn suppression_with_wrong_lint_does_not_silence() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap() // udlint: allow(raw-thread-spawn) -- wrong lint\n\
                   }\n";
        let r = check_source("crates/core/src/f.rs", src, false);
        // The unwrap stays, and the suppression is flagged as unused.
        assert_eq!(r.diagnostics.len(), 2, "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().any(|d| d.lint == "unwrap-in-core"));
        assert!(r.diagnostics.iter().any(|d| d.lint == "suppression-syntax"));
    }

    #[test]
    fn unknown_lint_in_suppression_is_flagged() {
        let src = "// udlint: allow(made-up-lint) -- because\nfn f() {}\n";
        let r = check_source("crates/core/src/f.rs", src, false);
        assert_eq!(r.diagnostics.len(), 1);
        assert!(r.diagnostics[0].message.contains("unknown lint"));
    }

    #[test]
    fn inactive_pedantic_suppression_is_not_unused() {
        // slice-index only runs under --pedantic; its suppressions must
        // not be reported as unused in a default run.
        let src = "fn f(v: &[u32]) -> u32 {\n\
                   v[0] // udlint: allow(slice-index) -- len checked above\n\
                   }\n";
        let r = check_source("crates/core/src/f.rs", src, false);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        let r = check_source("crates/core/src/f.rs", src, true);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn ignored_scope_produces_nothing() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = check_source("crates/detkit/src/f.rs", src, true);
        assert!(r.diagnostics.is_empty() && r.suppressed.is_empty());
    }

    #[test]
    fn json_report_shape() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = check_source("crates/core/src/f.rs", src, false);
        let j = r.render_json();
        assert!(j.contains("\"diagnostics\": ["));
        assert!(j.contains("\"counts\": {\"diagnostics\": 1, \"suppressed\": 0}"));
        assert!(!j.contains("/root/"), "no absolute paths in the report");
    }
}
