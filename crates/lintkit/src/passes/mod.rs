//! The AST-lite pass framework and the closed lint registry.
//!
//! A pass walks one file's significant-token stream (comments stripped,
//! `in_test` spans marked) and emits [`Diagnostic`]s. Passes are pure
//! pattern matchers over tokens — no type information — so each lint
//! documents its heuristic and accepts line-level suppression for the
//! cases the heuristic cannot see through (reason mandatory, counted,
//! budgeted by ci.sh).
//!
//! # Adding a lint (DESIGN.md §10)
//!
//! 1. Add the name + description to [`crate::LINTS`].
//! 2. Write a `Pass` impl in a new `passes/<name>.rs` module: pick the
//!    crates it applies to in `applies`, match tokens in `run`.
//! 3. Register it in [`registry`].
//! 4. Add adversarial snippets to `tests/adversarial.rs` proving the
//!    false-positive cases (strings, comments, test spans) stay silent.

pub mod envread;
pub mod namespace;
pub mod spawn;
pub mod unordered;
pub mod unwrap;
pub mod wallclock;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// How a file participates in linting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileScope {
    /// Not linted: tooling crates (detkit, bench, lintkit), integration
    /// tests, benches, examples — code that never serves a query.
    Ignored,
    /// Library code of an engine crate; `krate` is the directory name
    /// under `crates/`.
    Engine {
        /// Crate directory name (e.g. `"core"`, `"relstore"`).
        krate: String,
    },
}

/// Crates whose `src/` is *tooling*, not engine code. The determinism
/// contract binds what runs inside a query; harnesses that measure or
/// lint the engine legitimately read clocks, env vars, and argv.
const TOOLING_CRATES: &[&str] = &["detkit", "bench", "lintkit"];

/// Crates whose non-test library code must stay panic-free on untrusted
/// input (the `unwrap-in-core` audit set; DESIGN.md §8).
const PANIC_FREE_CRATES: &[&str] = &["core", "relstore", "hetgraph", "retrieval", "storekit"];

/// Crates bound by the closed trace/metric namespace rule (DESIGN.md §9).
const NAMESPACE_CRATES: &[&str] = &["core", "relstore", "hetgraph", "retrieval", "storekit"];

/// Classifies a workspace-relative path (forward slashes).
pub fn file_scope(rel_path: &str) -> FileScope {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.first() != Some(&"crates") || parts.len() < 3 {
        // Workspace-level `tests/`, `examples/`, stray files.
        return FileScope::Ignored;
    }
    let krate = parts[1];
    if TOOLING_CRATES.contains(&krate) {
        return FileScope::Ignored;
    }
    if parts[2] != "src" {
        // crates/<k>/tests, crates/<k>/benches, crates/<k>/examples.
        return FileScope::Ignored;
    }
    FileScope::Engine { krate: krate.to_string() }
}

/// A lint pass over one file.
pub trait Pass {
    /// The lint name this pass reports under (must appear in
    /// [`crate::LINTS`]).
    fn lint(&self) -> &'static str;

    /// Whether the pass runs on engine crate `krate` at `rel_path`.
    fn applies(&self, krate: &str, rel_path: &str) -> bool;

    /// Emits diagnostics for `file` into `out`.
    fn run(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// The closed pass registry. `pedantic` additionally enables the
/// slice-index audit (high-noise; run via `udlint --pedantic`).
pub fn registry(pedantic: bool) -> Vec<Box<dyn Pass>> {
    let mut passes: Vec<Box<dyn Pass>> = vec![
        Box::new(unwrap::UnwrapInCore),
        Box::new(unordered::UnorderedIteration),
        Box::new(wallclock::WallclockInHotPath),
        Box::new(spawn::RawThreadSpawn),
        Box::new(namespace::StringMetricLabel),
        Box::new(envread::NondeterministicEnv),
    ];
    if pedantic {
        passes.push(Box::new(unwrap::SliceIndex));
    }
    passes
}

pub(crate) fn in_panic_free_set(krate: &str) -> bool {
    PANIC_FREE_CRATES.contains(&krate)
}

pub(crate) fn in_namespace_set(krate: &str) -> bool {
    NAMESPACE_CRATES.contains(&krate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_classification() {
        assert_eq!(
            file_scope("crates/core/src/engine.rs"),
            FileScope::Engine { krate: "core".into() }
        );
        assert_eq!(file_scope("crates/detkit/src/rng.rs"), FileScope::Ignored);
        assert_eq!(file_scope("crates/bench/src/bin/profile.rs"), FileScope::Ignored);
        assert_eq!(file_scope("crates/lintkit/src/lexer.rs"), FileScope::Ignored);
        assert_eq!(file_scope("crates/parkit/tests/stress.rs"), FileScope::Ignored);
        assert_eq!(file_scope("tests/tests/determinism.rs"), FileScope::Ignored);
        assert_eq!(file_scope("examples/observability.rs"), FileScope::Ignored);
        assert_eq!(
            file_scope("crates/tracekit/src/wall.rs"),
            FileScope::Engine { krate: "tracekit".into() }
        );
    }

    #[test]
    fn registry_is_closed_and_named() {
        for pass in registry(true) {
            assert!(
                crate::LINTS.iter().any(|(name, _)| *name == pass.lint()),
                "pass `{}` missing from LINTS registry",
                pass.lint()
            );
        }
        assert_eq!(registry(false).len() + 1, registry(true).len());
    }
}
