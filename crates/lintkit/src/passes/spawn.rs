//! `raw-thread-spawn` — threads outside parkit.
//!
//! Determinism under parallelism (DESIGN.md §6) holds because *all*
//! engine concurrency flows through parkit's deterministic fork-join
//! pool: fixed chunking, index-ordered merges, panic containment. A raw
//! `std::thread::spawn` (or `thread::Builder`) bypasses every one of
//! those guarantees, so outside `crates/parkit` it is a contract
//! violation, not a style preference.

use crate::diag::Diagnostic;
use crate::passes::Pass;
use crate::source::SourceFile;

/// The raw-thread pass.
pub struct RawThreadSpawn;

impl Pass for RawThreadSpawn {
    fn lint(&self) -> &'static str {
        "raw-thread-spawn"
    }

    fn applies(&self, krate: &str, _rel_path: &str) -> bool {
        krate != "parkit"
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for k in 0..file.sig.len() {
            if file.sig_in_test(k) || file.sig_text(k) != "thread" {
                continue;
            }
            if file.sig_matches(k + 1, &["::", "spawn"])
                || file.sig_matches(k + 1, &["::", "Builder"])
            {
                out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: file.sig_line(k),
                    lint: self.lint().into(),
                    message: "raw std::thread outside parkit bypasses the deterministic \
                              fork-join pool; use parkit::Pool"
                        .into(),
                });
            }
        }
    }
}
