//! `nondeterministic-env` — environment reads outside the blessed
//! `UNISEM_*` config surface.
//!
//! The engine's behavior must be a pure function of its inputs plus the
//! documented `UNISEM_*` configuration variables (`UNISEM_THREADS`,
//! `UNISEM_FAULTS`, `UNISEM_TRACE`, `UNISEM_TRACE_WALL`, …). Any other
//! ambient read — a non-`UNISEM_` variable, a *dynamically named*
//! variable, `env::vars()`, `env::args()`, `env::temp_dir()` — is hidden
//! configuration that makes replay and fault attribution impossible.
//!
//! Flags, outside test spans, any `std::env::` read whose target is not
//! a string literal starting with `UNISEM_`.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::passes::Pass;
use crate::source::SourceFile;

/// The env-read pass.
pub struct NondeterministicEnv;

/// `env::` functions that read a single named variable.
const NAMED_READS: &[&str] = &["var", "var_os"];

/// `env::` functions that are ambient reads no matter the arguments.
const AMBIENT_READS: &[&str] =
    &["vars", "vars_os", "args", "args_os", "temp_dir", "current_dir", "home_dir", "current_exe"];

impl Pass for NondeterministicEnv {
    fn lint(&self) -> &'static str {
        "nondeterministic-env"
    }

    fn applies(&self, _krate: &str, _rel_path: &str) -> bool {
        true
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for k in 0..file.sig.len() {
            if file.sig_in_test(k) || file.sig_text(k) != "env" || file.sig_text(k + 1) != "::" {
                continue;
            }
            let f = file.sig_text(k + 2);
            let flagged = if AMBIENT_READS.contains(&f) {
                Some(format!("env::{f}() is ambient, undeclared configuration"))
            } else if NAMED_READS.contains(&f) && file.sig_text(k + 3) == "(" {
                let arg_is_blessed = file.sig_kind(k + 4) == Some(TokKind::Str)
                    && str_content(file.sig_text(k + 4)).starts_with("UNISEM_");
                if arg_is_blessed {
                    None
                } else {
                    Some(format!(
                        "env::{f} outside the blessed UNISEM_* config surface (target must be \
                         a UNISEM_-prefixed string literal)"
                    ))
                }
            } else {
                None
            };
            if let Some(message) = flagged {
                out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: file.sig_line(k),
                    lint: self.lint().into(),
                    message,
                });
            }
        }
    }
}

/// Strips prefix/hashes/quotes off a string-literal token's text.
fn str_content(text: &str) -> &str {
    text.trim_start_matches(['r', 'b', 'c'])
        .trim_start_matches('#')
        .trim_start_matches('"')
        .trim_end_matches('#')
        .trim_end_matches('"')
}
