//! `unordered-iteration` — the determinism contract's blind spot.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState`'s
//! per-process seed: any float accumulated, trace emitted, or collection
//! built *in iteration order* silently varies across runs even at one
//! thread — exactly the hazard the byte-identical-answers contract
//! (DESIGN.md §6) cannot tolerate and no compiler check catches.
//!
//! # Heuristic
//!
//! Per file, collect identifiers *known* to be hash collections:
//!
//! - annotations: `name: HashMap<…>` / `name: &mut HashSet<…>` (lets,
//!   params, struct fields);
//! - constructor bindings: `name = HashMap::new()` / `with_capacity`;
//! - collect bindings: `let name = …collect::<HashMap<…>>()`.
//!
//! Then flag, outside test spans:
//!
//! - `for … in name` / `for … in &name` / `for … in name.iter()` …;
//! - `name.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()`,
//!   `.intersection()` … (also behind `self.`) unless the remainder of
//!   the statement contains an **order-insensitive sink**: a `.sort*`
//!   call, `.count()`, `.any()`/`.all()`, `.min()`/`.max()`, an integer
//!   `.sum::<uN/iN>()`, or a `.collect::<…>()` into a `BTreeMap`/
//!   `BTreeSet`/`HashMap`/`HashSet` (re-keying is order-insensitive);
//! - `fn … -> HashMap/HashSet` returns (callers will iterate them; the
//!   unordered-ness escapes the function boundary).
//!
//! The heuristic cannot prove per-key-update loops safe (`for k in map`
//! where each key's slot is written independently) — those either switch
//! to `BTreeMap`/sorted iteration or carry a reasoned suppression.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::passes::Pass;
use crate::source::SourceFile;

/// The unordered-iteration pass.
pub struct UnorderedIteration;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iterator-producing methods on hash collections.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

/// Tokens that may appear between an identifier and its `HashMap`
/// annotation when walking backwards from the type name to the `:`.
const TYPE_PATH_TOKENS: &[&str] =
    &["::", "std", "collections", "&", "mut", "<", "Arc", "Rc", "Box", "Option", "dyn"];

impl Pass for UnorderedIteration {
    fn lint(&self) -> &'static str {
        "unordered-iteration"
    }

    fn applies(&self, _krate: &str, _rel_path: &str) -> bool {
        true
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let hash_idents = collect_hash_idents(file);
        flag_fn_returns(file, self.lint(), out);
        flag_for_loops(file, &hash_idents, self.lint(), out);
        flag_method_chains(file, &hash_idents, self.lint(), out);
        // One site can be matched by both the for-loop and the chain
        // scanner; report it once.
        out.sort();
        out.dedup();
    }
}

/// Identifiers this file binds to a `HashMap`/`HashSet`.
fn collect_hash_idents(file: &SourceFile) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for k in 0..file.sig.len() {
        if !HASH_TYPES.contains(&file.sig_text(k)) {
            continue;
        }
        // Annotation: walk back over type-path tokens to a `:`, then the
        // identifier before it (covers lets, fn params, struct fields).
        let mut j = k;
        while j > 0 && TYPE_PATH_TOKENS.contains(&file.sig_text(j - 1)) {
            j -= 1;
        }
        if j >= 2 && file.sig_text(j - 1) == ":" && file.sig_kind(j - 2) == Some(TokKind::Ident) {
            idents.insert(file.sig_text(j - 2).to_string());
            continue;
        }
        // Constructor binding: `name = HashMap::new()`.
        if file.sig_text(k + 1) == "::"
            && k >= 2
            && file.sig_text(k - 1) == "="
            && file.sig_kind(k - 2) == Some(TokKind::Ident)
        {
            idents.insert(file.sig_text(k - 2).to_string());
            continue;
        }
        // Collect binding: `let name = … .collect::<HashMap<…>>()`.
        if file.sig_matches(k.saturating_sub(3), &["collect", "::", "<"]) {
            let mut b = k;
            let mut steps = 0;
            while b > 0 && steps < 120 {
                let t = file.sig_text(b - 1);
                if t == ";" || t == "{" || t == "}" {
                    break;
                }
                if t == "let" {
                    let name_at = if file.sig_text(b) == "mut" { b + 1 } else { b };
                    if file.sig_kind(name_at) == Some(TokKind::Ident) {
                        idents.insert(file.sig_text(name_at).to_string());
                    }
                    break;
                }
                b -= 1;
                steps += 1;
            }
        }
    }
    idents
}

/// Flags `fn … -> … HashMap/HashSet …` signatures.
fn flag_fn_returns(file: &SourceFile, lint: &str, out: &mut Vec<Diagnostic>) {
    for k in 0..file.sig.len() {
        if file.sig_in_test(k) || file.sig_text(k) != "->" {
            continue;
        }
        // Only fn signatures: scan the return type until the body `{`,
        // a `;` (trait method), or `where`.
        let mut j = k + 1;
        while j < file.sig.len() {
            let t = file.sig_text(j);
            if t == "{" || t == ";" || t == "where" {
                break;
            }
            if HASH_TYPES.contains(&t) {
                out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: file.sig_line(j),
                    lint: lint.into(),
                    message: format!(
                        "returning a {t} lets callers iterate it in nondeterministic order; \
                         return a BTreeMap/BTreeSet or a sorted Vec"
                    ),
                });
                break;
            }
            j += 1;
        }
    }
}

/// Flags `for … in <hash-expr>` loops.
fn flag_for_loops(
    file: &SourceFile,
    hash_idents: &BTreeSet<String>,
    lint: &str,
    out: &mut Vec<Diagnostic>,
) {
    for k in 0..file.sig.len() {
        if file.sig_in_test(k) || file.sig_text(k) != "for" {
            continue;
        }
        // `for <pat> in <expr> {` — find `in` at pattern depth 0. Also
        // rejects `impl Trait for Type` (no `in` before `{`).
        let mut depth = 0i32;
        let mut j = k + 1;
        let mut in_at = None;
        while j < file.sig.len() && j < k + 64 {
            match file.sig_text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "in" if depth == 0 => {
                    in_at = Some(j);
                    break;
                }
                "{" | ";" => break,
                _ => {}
            }
            j += 1;
        }
        let Some(in_at) = in_at else { continue };
        // Expression tokens between `in` and the body `{`.
        let mut expr = Vec::new();
        let mut depth = 0i32;
        let mut j = in_at + 1;
        while j < file.sig.len() {
            let t = file.sig_text(j);
            if t == "{" && depth == 0 {
                break;
            }
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
            expr.push(t.to_string());
            j += 1;
        }
        let base = base_ident(&expr);
        if let Some(base) = base {
            if hash_idents.contains(&base) && iterates_directly(&expr, &base) {
                out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: file.sig_line(k),
                    lint: lint.into(),
                    message: format!(
                        "`for` over `{base}` (HashMap/HashSet) iterates in nondeterministic \
                         order; sort first or use a BTreeMap/BTreeSet"
                    ),
                });
            }
        }
    }
}

/// The identifier a borrow/method-chain expression starts from, skipping
/// leading `&`/`mut` and a `self.` prefix.
fn base_ident(expr: &[String]) -> Option<String> {
    let mut i = 0;
    while i < expr.len() && (expr[i] == "&" || expr[i] == "mut") {
        i += 1;
    }
    if expr.get(i).map(String::as_str) == Some("self")
        && expr.get(i + 1).map(String::as_str) == Some(".")
    {
        i += 2;
    }
    expr.get(i).cloned()
}

/// True when the expression iterates `base` itself: the whole expression
/// is the identifier, or the identifier immediately followed by an
/// iterator method (`base`, `&base`, `base.iter()`, `base.keys().map(…)`).
fn iterates_directly(expr: &[String], base: &str) -> bool {
    let mut i = 0;
    while i < expr.len() && (expr[i] == "&" || expr[i] == "mut") {
        i += 1;
    }
    if expr.get(i).map(String::as_str) == Some("self") {
        i += 2;
    }
    if expr.get(i).map(String::as_str) != Some(base) {
        return false;
    }
    match expr.get(i + 1).map(String::as_str) {
        None => true, // `for x in map` / `for x in &map`
        Some(".") => expr.get(i + 2).is_some_and(|m| ITER_METHODS.contains(&m.as_str())),
        _ => false,
    }
}

/// Flags `name.iter()`-style chains outside `for` headers unless the
/// rest of the statement contains an order-insensitive sink.
fn flag_method_chains(
    file: &SourceFile,
    hash_idents: &BTreeSet<String>,
    lint: &str,
    out: &mut Vec<Diagnostic>,
) {
    for k in 2..file.sig.len() {
        if file.sig_in_test(k) {
            continue;
        }
        let m = file.sig_text(k);
        if !ITER_METHODS.contains(&m) || file.sig_text(k - 1) != "." || file.sig_text(k + 1) != "("
        {
            continue;
        }
        // Base: `name.m(` or `self.name.m(`.
        let name = file.sig_text(k - 2);
        if file.sig_kind(k - 2) != Some(TokKind::Ident) {
            continue;
        }
        let base = if name == "self" { continue } else { name };
        if !hash_idents.contains(base) {
            continue;
        }
        if has_order_insensitive_sink(file, k) {
            continue;
        }
        out.push(Diagnostic {
            path: file.rel_path.clone(),
            line: file.sig_line(k),
            lint: lint.into(),
            message: format!(
                "`{base}.{m}()` iterates a HashMap/HashSet in nondeterministic order with no \
                 order-insensitive sink in the statement; sort, or use a BTreeMap/BTreeSet"
            ),
        });
    }
}

/// Integer types whose `Sum` is commutative exactly (unlike floats).
const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Scans forward from the iterator call for a sink that makes iteration
/// order irrelevant, stopping at the end of the statement.
fn has_order_insensitive_sink(file: &SourceFile, from: usize) -> bool {
    let mut depth = 0i32;
    let mut j = from + 1;
    while j < file.sig.len() {
        let t = file.sig_text(j);
        match t {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return false; // end of the enclosing expression
                }
            }
            ";" | "{" | "}" if depth == 0 => return false,
            _ if file.sig_text(j - 1) == "." => {
                if t.starts_with("sort") {
                    return true;
                }
                match t {
                    "count" | "any" | "all" | "min" | "max" | "is_subset" | "is_superset"
                    | "is_disjoint" => return true,
                    "sum" | "collect" => {
                        // Order-insensitive only with an explicit integer /
                        // rekeying turbofish: `.sum::<usize>()`,
                        // `.collect::<BTreeMap<_, _>>()`.
                        if file.sig_matches(j + 1, &["::", "<"]) {
                            let target = file.sig_text(j + 3);
                            if t == "sum" && INT_TYPES.contains(&target) {
                                return true;
                            }
                            if t == "collect"
                                && matches!(target, "BTreeMap" | "BTreeSet" | "HashMap" | "HashSet")
                            {
                                return true;
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}
