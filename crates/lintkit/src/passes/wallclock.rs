//! `wallclock-in-hot-path` — wall-clock reads outside tracekit's
//! wall-gated module.
//!
//! Wall-clock is inherently nondeterministic, so the observability layer
//! quarantines it: durations live in the deliberately non-deterministic
//! `TimingReport` / redactable trace lines, and the *only* blessed read
//! point is `tracekit::wall` (`crates/tracekit/src/wall.rs`), whose
//! `Stopwatch` is what engine stages use. A raw `Instant::now()` or
//! `SystemTime::now()` anywhere else in engine code is a contract leak —
//! one format-string away from a nondeterministic answer payload.

use crate::diag::Diagnostic;
use crate::passes::Pass;
use crate::source::SourceFile;

/// The wall-clock pass.
pub struct WallclockInHotPath;

/// The one module allowed to touch the process clock.
const BLESSED: &str = "crates/tracekit/src/wall.rs";

impl Pass for WallclockInHotPath {
    fn lint(&self) -> &'static str {
        "wallclock-in-hot-path"
    }

    fn applies(&self, _krate: &str, rel_path: &str) -> bool {
        rel_path != BLESSED
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for k in 0..file.sig.len() {
            if file.sig_in_test(k) {
                continue;
            }
            let t = file.sig_text(k);
            if (t == "Instant" || t == "SystemTime") && file.sig_matches(k + 1, &["::", "now"]) {
                out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: file.sig_line(k),
                    lint: self.lint().into(),
                    message: format!(
                        "{t}::now() outside tracekit::wall; use tracekit::wall::Stopwatch so \
                         wall-clock stays quarantined from deterministic state"
                    ),
                });
            }
        }
    }
}
