//! `string-metric-label` — the closed trace/metric namespace rule
//! (DESIGN.md §9), now multiline-proof.
//!
//! Degradation components and metric names form one closed namespace
//! (`tracekit::component` / `tracekit::Metric`). Engine code must pass
//! registry constants, never string literals — a literal compiles today
//! and silently forks the namespace tomorrow. The old awk gate matched
//! single lines, so `Degradation::new(\n    "label"` slipped through;
//! token matching does not care where the newlines fall.
//!
//! Flags, outside test spans:
//!
//! - `Degradation::new("…"` — string literal as the component argument;
//! - `.incr("…"` / `.add("…"` / `.set("…"` / `.observe("…"` /
//!   `.record_stage("…"` — metric calls take enum variants by
//!   construction, so a string argument means someone is routing around
//!   the registry;
//! - `from_name(format!…)` / `from_name(String…)` / `from_name(&format!…)`
//!   — dynamically *constructed* names defeat the closed registry even
//!   through the lookup API.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::passes::{in_namespace_set, Pass};
use crate::source::SourceFile;

/// The closed-namespace pass.
pub struct StringMetricLabel;

const METRIC_METHODS: &[&str] = &["incr", "add", "set", "observe", "record_stage"];

impl Pass for StringMetricLabel {
    fn lint(&self) -> &'static str {
        "string-metric-label"
    }

    fn applies(&self, krate: &str, _rel_path: &str) -> bool {
        in_namespace_set(krate)
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for k in 0..file.sig.len() {
            if file.sig_in_test(k) {
                continue;
            }
            let t = file.sig_text(k);
            let flagged = if t == "Degradation"
                && file.sig_matches(k + 1, &["::", "new", "("])
                && file.sig_kind(k + 4) == Some(TokKind::Str)
            {
                Some(
                    "Degradation::new(\"…\") bypasses the closed component registry; \
                     use a tracekit::component constant"
                        .to_string(),
                )
            } else if METRIC_METHODS.contains(&t)
                && k > 0
                && file.sig_text(k - 1) == "."
                && file.sig_text(k + 1) == "("
                && file.sig_kind(k + 2) == Some(TokKind::Str)
            {
                Some(format!(
                    ".{t}(\"…\") takes a string where the closed Metric registry expects an \
                     enum constant"
                ))
            } else if t == "from_name" && file.sig_text(k + 1) == "(" {
                let a = file.sig_text(k + 2);
                let b = file.sig_text(k + 3);
                if a == "format" || a == "String" || (a == "&" && b == "format") {
                    Some(
                        "from_name with a dynamically built name routes around the closed \
                         metric registry"
                            .to_string(),
                    )
                } else {
                    None
                }
            } else {
                None
            };
            if let Some(message) = flagged {
                out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: file.sig_line(k),
                    lint: self.lint().into(),
                    message,
                });
            }
        }
    }
}
