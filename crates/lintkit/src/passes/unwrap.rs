//! `unwrap-in-core` — the panic-freedom audit (DESIGN.md §8), plus the
//! opt-in `slice-index` audit.
//!
//! Engine-core, relational-executor, graph, and retrieval library code
//! must stay panic-free on untrusted input. Flags, outside test spans:
//!
//! - `.unwrap()` / `.expect(…)` on options/results;
//! - `panic!`, `unreachable!`, `todo!`, `unimplemented!` invocations.
//!
//! `unwrap_or` / `unwrap_or_else` / `unwrap_or_default` / `expect_err`
//! are distinct identifiers at the token level and are never flagged —
//! as are `unwrap` inside strings, comments, or `#[cfg(test)]` items.
//!
//! The `slice-index` lint (pedantic; `udlint --pedantic`) additionally
//! reports `expr[index]` positions, which can panic on out-of-bounds
//! access. It is too noisy for `--deny all` (bounded indexing after a
//! length check is pervasive and fine) but useful as an audit listing.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::passes::{in_panic_free_set, Pass};
use crate::source::SourceFile;

/// The default panic audit.
pub struct UnwrapInCore;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Pass for UnwrapInCore {
    fn lint(&self) -> &'static str {
        "unwrap-in-core"
    }

    fn applies(&self, krate: &str, _rel_path: &str) -> bool {
        in_panic_free_set(krate)
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for k in 0..file.sig.len() {
            if file.sig_in_test(k) || file.sig_kind(k) != Some(TokKind::Ident) {
                continue;
            }
            let text = file.sig_text(k);
            let flagged = if (text == "unwrap" || text == "expect")
                && k > 0
                && file.sig_text(k - 1) == "."
                && file.sig_text(k + 1) == "("
            {
                Some(format!(".{text}( can panic; return a typed error instead"))
            } else if PANIC_MACROS.contains(&text) && file.sig_text(k + 1) == "!" {
                Some(format!("{text}! in library code; return a typed error instead"))
            } else {
                None
            };
            if let Some(message) = flagged {
                out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: file.sig_line(k),
                    lint: self.lint().into(),
                    message,
                });
            }
        }
    }
}

/// Pedantic indexing audit (`expr[i]` can panic).
pub struct SliceIndex;

impl Pass for SliceIndex {
    fn lint(&self) -> &'static str {
        "slice-index"
    }

    fn applies(&self, krate: &str, _rel_path: &str) -> bool {
        in_panic_free_set(krate)
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for k in 1..file.sig.len() {
            if file.sig_in_test(k) || file.sig_text(k) != "[" {
                continue;
            }
            // `foo[i]`, `bar()[i]`, `baz[i][j]` — an index expression has
            // a value-like token right before the bracket. `&[T]` types,
            // attribute `#[…]`, and array literals `= […]` do not.
            let prev_is_value = matches!(file.sig_kind(k - 1), Some(TokKind::Ident))
                && !is_keyword(file.sig_text(k - 1))
                || file.sig_text(k - 1) == ")"
                || file.sig_text(k - 1) == "]";
            // Skip empty index `[]` (slice pattern) and `[..]` full-range
            // (cannot be out of bounds).
            if prev_is_value && file.sig_text(k + 1) != "]" {
                out.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: file.sig_line(k),
                    lint: self.lint().into(),
                    message: "indexing can panic out-of-bounds; consider .get()".into(),
                });
            }
        }
    }
}

fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "let"
            | "mut"
            | "ref"
            | "in"
            | "return"
            | "match"
            | "if"
            | "else"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "for"
            | "while"
            | "loop"
            | "box"
            | "move"
            | "static"
            | "const"
            | "type"
            | "struct"
            | "enum"
            | "trait"
            | "where"
            | "as"
            | "dyn"
    )
}
