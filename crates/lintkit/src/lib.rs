//! lintkit — a tokenizer-based workspace linter (`udlint`) that enforces
//! the determinism contract statically.
//!
//! The CI gates this crate replaces were awk one-liners: line-oriented,
//! blind to raw strings and block comments, and bailing out of a file at
//! the first `#[cfg(test)]`. lintkit lexes real Rust (raw strings, nested
//! block comments, char-vs-lifetime, byte/C strings, attributes) and runs
//! a closed registry of token-level passes over engine code, so a
//! `.unwrap()` inside `r#"…"#` never fires and a panic *after* a test
//! module never hides.
//!
//! The registry is *closed*: every lint name lives in [`LINTS`], every
//! suppression must name one, and `udlint --list` prints them. See
//! DESIGN.md §10 for the registry, the suppression grammar, and the
//! recipe for adding a lint.
//!
//! ```text
//! $ udlint --deny all
//! crates/core/src/engine.rs:212: [wallclock-in-hot-path] Instant::now() outside tracekit::wall; …
//! udlint: 1 diagnostic(s), 1 suppressed
//! ```

pub mod ast;
pub mod diag;
pub mod explain;
pub mod lexer;
pub mod manifest;
pub mod passes;
pub mod runner;
pub mod semantic;
pub mod source;
pub mod symbols;

/// The closed lint registry: `(name, one-line description)`.
///
/// Suppression comments (`// udlint: allow(<name>) -- <reason>`) must
/// name an entry from this table; anything else is `suppression-syntax`.
pub const LINTS: &[(&str, &str)] = &[
    (
        "unwrap-in-core",
        "unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test engine library code \
         (panic-free crates: core, relstore, hetgraph, retrieval)",
    ),
    (
        "slice-index",
        "direct slice/array indexing in panic-free crates (pedantic; enable with --pedantic)",
    ),
    (
        "unordered-iteration",
        "HashMap/HashSet iteration feeding floats, traces, or returned collections without an \
         interposed sort or BTreeMap",
    ),
    (
        "wallclock-in-hot-path",
        "Instant::now()/SystemTime::now() outside tracekit's wall-gated module \
         (crates/tracekit/src/wall.rs)",
    ),
    (
        "raw-thread-spawn",
        "std::thread::spawn/Builder outside parkit's deterministic fork-join pool",
    ),
    (
        "string-metric-label",
        "string literal or dynamically built name where the closed trace/metric namespace \
         expects a registry constant (DESIGN.md §9)",
    ),
    ("nondeterministic-env", "environment read outside the blessed UNISEM_* configuration surface"),
    (
        "non-path-dependency",
        "Cargo.toml dependency that is not path-only / workspace-inherited (hermetic build \
         policy)",
    ),
    (
        "suppression-syntax",
        "malformed, unknown-lint, or unused `udlint: allow` comment (reason is mandatory)",
    ),
    (
        "transitive-wallclock",
        "function whose call graph reaches an Instant/SystemTime read outside tracekit::wall \
         (semantic; caller-side of wallclock-in-hot-path)",
    ),
    (
        "uncovered-io-site",
        "raw storekit I/O (write_all/sync_all/sync_data/set_len) not dominated by a faultkit \
         `check(Site::…)` on any call path — the crash matrix cannot reach it",
    ),
    (
        "dead-registry-entry",
        "registry_enum! variant (Metric/Hist/Stage) never recorded outside test code — a \
         forever-zero series in every dashboard",
    ),
    (
        "meter-mirror",
        "ladder and planner answer paths in crates/core/src/engine.rs write different \
         ResourceMeter field sets (semantic; differential-testing blind spot)",
    ),
];

#[cfg(test)]
mod tests {
    #[test]
    fn lint_names_are_unique_and_kebab() {
        for (i, (name, desc)) in super::LINTS.iter().enumerate() {
            assert!(!desc.is_empty());
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "lint `{name}` is not kebab-case"
            );
            assert!(
                super::LINTS[..i].iter().all(|(other, _)| other != name),
                "duplicate lint `{name}`"
            );
        }
    }
}
