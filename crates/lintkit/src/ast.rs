//! An item-level recursive-descent parser over the lexed token stream.
//!
//! The token-level passes (PR 5) see one file at a time and no structure:
//! they can flag a raw `Instant::now()` but cannot say *which function*
//! contains it, let alone who calls that function from another crate. This
//! parser recovers exactly the structure the semantic passes need — the
//! item tree (`fn` / `struct` / `enum` / `impl` / `trait` / `mod` / `use`
//! / macro invocations) with names, body spans, and the `#[cfg(test)]`
//! marking the lexer already computed — and nothing more. No expressions,
//! no types, no trait solving: function bodies stay token ranges that
//! passes scan for patterns, which is what keeps the parser small enough
//! to be trustworthy and total.
//!
//! # Totality and recovery
//!
//! The parser never fails and never panics. Anything it does not
//! recognize at item position is skipped one *balanced chunk* at a time
//! (a matched delimiter group counts as one chunk), so a syntax island it
//! cannot read costs at most the island — the next recognizable item is
//! parsed normally. `tests/parser_corpus.rs` holds the adversarial corpus
//! (macro soup, nested mods, `impl Trait`, where-clauses, attribute
//! stacking) proving recovery on each.
//!
//! Spans are *sig-indices* — positions in [`SourceFile::sig`], the
//! comment-stripped token stream — so passes compose with the existing
//! `sig_text` / `sig_line` / `sig_in_test` accessors.

use crate::source::SourceFile;

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(…) { … }` (free, impl, or trait-default).
    Fn,
    /// `struct Name { … }` / tuple / unit struct.
    Struct,
    /// `enum Name { … }`.
    Enum,
    /// `union Name { … }`.
    Union,
    /// `trait Name { … }` (children hold default-bodied methods).
    Trait,
    /// `impl [Trait for] Type { … }` — `name` is the *self type*.
    Impl,
    /// `mod name;` or `mod name { … }` (children hold the inline items).
    Mod,
    /// `use path::to::{items};` — the token span holds the full path.
    Use,
    /// `const NAME: T = …;`
    Const,
    /// `static NAME: T = …;`
    Static,
    /// `type Alias = …;`
    TypeAlias,
    /// `macro_rules! name { … }`.
    MacroDef,
    /// Item-position macro invocation `name! { … }` (e.g. `registry_enum!`).
    MacroCall,
    /// `extern crate name;`
    ExternCrate,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item class.
    pub kind: ItemKind,
    /// Declared name. For [`ItemKind::Impl`] this is the *self type*'s
    /// final path segment; for [`ItemKind::Use`] the final bound name is
    /// not computed here (resolution reads the token span instead);
    /// empty when unnamed/unreadable.
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// Sig-index of the item's first token (the keyword, not attributes).
    pub start: usize,
    /// Sig-index of the item's last token (`}` or `;`), inclusive.
    pub end: usize,
    /// Sig-index range strictly *inside* the item's brace/paren block
    /// (`(lo, hi)` inclusive; `None` for brace-less items or empty
    /// blocks). For [`ItemKind::Fn`] this is the body; for
    /// [`ItemKind::MacroCall`] the tokens between the delimiters.
    pub body: Option<(usize, usize)>,
    /// True when the item sits under `#[cfg(test)]` / `#[test]` (taken
    /// from the lexer's span marking on the introducing token).
    pub in_test: bool,
    /// Nested items (for `mod`, `impl`, and `trait` bodies).
    pub children: Vec<Item>,
}

/// The item tree of one file.
#[derive(Debug, Clone, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// Parses the item tree of `file`. Total: never fails, never panics.
pub fn parse(file: &SourceFile) -> Ast {
    let mut p = Parser { f: file };
    let (items, _) = p.parse_items(0, file.sig.len(), false);
    Ast { items }
}

struct Parser<'a> {
    f: &'a SourceFile,
}

impl<'a> Parser<'a> {
    fn text(&self, k: usize) -> &str {
        self.f.sig_text(k)
    }

    /// Parses items in `[from, to)`; `in_trait` admits brace-less `fn`
    /// signatures without treating them as recovery. Returns the items
    /// and the index it stopped at.
    fn parse_items(&mut self, from: usize, to: usize, in_trait: bool) -> (Vec<Item>, usize) {
        let mut items = Vec::new();
        let mut k = from;
        while k < to {
            match self.parse_item(k, to, in_trait) {
                Some(item) => {
                    k = item.end + 1;
                    items.push(item);
                }
                None => {
                    // Recovery: skip one balanced chunk and try again at
                    // the next position. Guaranteed progress: at least
                    // one token is consumed.
                    k = self.skip_chunk(k, to);
                }
            }
        }
        (items, to)
    }

    /// Skips one balanced chunk starting at `k`: a matched delimiter
    /// group, or a single token. An *unmatched* open delimiter skips
    /// only itself — swallowing to end-of-file would take every later
    /// item down with one garbage brace. Always advances.
    fn skip_chunk(&self, k: usize, to: usize) -> usize {
        let close = match self.text(k) {
            "{" => "}",
            "(" => ")",
            "[" => "]",
            _ => return k + 1,
        };
        let open = self.text(k).to_string();
        let mut depth = 0usize;
        for j in k..to {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        k + 1
    }

    /// Index of the delimiter matching `open` at `k` (or `to - 1` when
    /// unterminated; never past `to`).
    fn match_delim(&self, k: usize, open: &str, close: &str, to: usize) -> usize {
        let mut depth = 0usize;
        let mut j = k;
        while j < to {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        to.saturating_sub(1).max(k)
    }

    /// Skips attributes (`#[…]`, `#![…]`) starting at `k`.
    fn skip_attributes(&self, mut k: usize, to: usize) -> usize {
        while k < to && self.text(k) == "#" {
            let mut j = k + 1;
            if self.text(j) == "!" {
                j += 1;
            }
            if self.text(j) != "[" {
                break; // stray `#`: not an attribute
            }
            k = self.match_delim(j, "[", "]", to) + 1;
        }
        k
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, `pub(in …)`).
    fn skip_visibility(&self, mut k: usize, to: usize) -> usize {
        if self.text(k) == "pub" {
            k += 1;
            if k < to && self.text(k) == "(" {
                k = self.match_delim(k, "(", ")", to) + 1;
            }
        }
        k
    }

    /// Skips fn qualifiers (`const`, `async`, `unsafe`, `extern "C"`,
    /// `default`) when they precede an item keyword.
    fn skip_fn_qualifiers(&self, mut k: usize, to: usize) -> usize {
        loop {
            match self.text(k) {
                "const" | "async" | "unsafe" | "default" if self.is_qualifier_here(k) => k += 1,
                "extern" if self.text(k + 1) != "crate" => {
                    // `extern "C" fn` / `unsafe extern "C" fn`.
                    k += 1;
                    if matches!(self.f.sig_kind(k), Some(crate::lexer::TokKind::Str)) {
                        k += 1;
                    }
                }
                _ => break,
            }
            if k >= to {
                break;
            }
        }
        k
    }

    /// `const`/`unsafe`/… count as qualifiers only when another item
    /// keyword follows eventually (`const fn`, `unsafe impl`); `const X:`
    /// is an item of its own.
    fn is_qualifier_here(&self, k: usize) -> bool {
        matches!(self.text(k + 1), "fn" | "unsafe" | "async" | "extern" | "impl" | "trait")
    }

    /// Skips a generic parameter list `<…>` at `k` (angle-depth counted;
    /// `->` and `=>` are glued tokens, so `>` counting is exact).
    fn skip_generics(&self, k: usize, to: usize) -> usize {
        if self.text(k) != "<" {
            return k;
        }
        let mut depth = 0usize;
        let mut j = k;
        while j < to {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                // A `(`…`)` group inside generics (Fn-trait sugar) may
                // contain no angles but is safe to step through.
                _ => {}
            }
            j += 1;
        }
        to
    }

    /// Tries to parse one item at `k` (attributes already allowed in
    /// front). Returns `None` when `k` does not start a recognizable
    /// item.
    fn parse_item(&mut self, k: usize, to: usize, in_trait: bool) -> Option<Item> {
        let after_attrs = self.skip_attributes(k, to);
        let after_vis = self.skip_visibility(after_attrs, to);
        let kw = self.skip_fn_qualifiers(after_vis, to);
        if kw >= to {
            return None;
        }
        let in_test = self.f.sig_in_test(kw);
        let line = self.f.sig_line(kw);
        match self.text(kw) {
            "fn" => self.parse_fn(kw, to, line, in_test, in_trait),
            "struct" | "enum" | "union" => self.parse_adt(kw, to, line, in_test),
            "trait" => self.parse_trait(kw, to, line, in_test),
            "impl" => self.parse_impl(kw, to, line, in_test),
            "mod" => self.parse_mod(kw, to, line, in_test),
            "use" => self.parse_to_semi(kw, to, ItemKind::Use, String::new(), line, in_test),
            "const" | "static" => {
                let name = self.ident_at(kw + 1).unwrap_or_default();
                let kind =
                    if self.text(kw) == "const" { ItemKind::Const } else { ItemKind::Static };
                self.parse_to_semi(kw, to, kind, name, line, in_test)
            }
            "type" => {
                let name = self.ident_at(kw + 1).unwrap_or_default();
                self.parse_to_semi(kw, to, ItemKind::TypeAlias, name, line, in_test)
            }
            "extern" if self.text(kw + 1) == "crate" => {
                let name = self.ident_at(kw + 2).unwrap_or_default();
                self.parse_to_semi(kw, to, ItemKind::ExternCrate, name, line, in_test)
            }
            "macro_rules" if self.text(kw + 1) == "!" => {
                let name = self.ident_at(kw + 2).unwrap_or_default();
                let open = kw + 3;
                if self.text(open) != "{" && self.text(open) != "(" && self.text(open) != "[" {
                    return None;
                }
                let (o, c) = delim_pair(self.text(open));
                let close = self.match_delim(open, o, c, to);
                // `macro_rules! m (…);` needs its trailing semicolon.
                let end = if self.text(close + 1) == ";" { close + 1 } else { close };
                Some(Item {
                    kind: ItemKind::MacroDef,
                    name,
                    line,
                    start: kw,
                    end,
                    body: body_range(open, close),
                    in_test,
                    children: Vec::new(),
                })
            }
            t if is_ident_like(t) && self.text(kw + 1) == "!" => {
                // Item-position macro invocation: `name! { … }` or
                // `name!(…);` — registry_enum!, thread_local!, etc.
                let open = kw + 2;
                let name = t.to_string();
                let (o, c) = match self.text(open) {
                    "{" => ("{", "}"),
                    "(" => ("(", ")"),
                    "[" => ("[", "]"),
                    _ => return None,
                };
                let close = self.match_delim(open, o, c, to);
                let end = if o != "{" && self.text(close + 1) == ";" { close + 1 } else { close };
                Some(Item {
                    kind: ItemKind::MacroCall,
                    name,
                    line,
                    start: kw,
                    end,
                    body: body_range(open, close),
                    in_test,
                    children: Vec::new(),
                })
            }
            _ => None,
        }
    }

    fn ident_at(&self, k: usize) -> Option<String> {
        let t = self.text(k);
        is_ident_like(t).then(|| t.to_string())
    }

    /// `fn name<…>(…) [-> …] [where …] { body }` or `;`.
    fn parse_fn(
        &mut self,
        kw: usize,
        to: usize,
        line: u32,
        in_test: bool,
        in_trait: bool,
    ) -> Option<Item> {
        let name = self.ident_at(kw + 1)?;
        let mut j = self.skip_generics(kw + 2, to);
        if self.text(j) != "(" {
            return None;
        }
        j = self.match_delim(j, "(", ")", to) + 1;
        // Return type / where clause: first `{` or `;` outside any
        // delimiter group ends the header. Angle depth guards `where
        // T: Iterator<Item = U>`.
        let mut angle = 0i32;
        while j < to {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" => j = self.match_delim(j, "(", ")", to),
                "[" => j = self.match_delim(j, "[", "]", to),
                "{" if angle <= 0 => {
                    let close = self.match_delim(j, "{", "}", to);
                    return Some(Item {
                        kind: ItemKind::Fn,
                        name,
                        line,
                        start: kw,
                        end: close,
                        body: body_range(j, close),
                        in_test,
                        children: Vec::new(),
                    });
                }
                ";" if in_trait => {
                    return Some(Item {
                        kind: ItemKind::Fn,
                        name,
                        line,
                        start: kw,
                        end: j,
                        body: None,
                        in_test,
                        children: Vec::new(),
                    });
                }
                ";" => {
                    // A body-less free fn is malformed; accept it anyway
                    // (total parser) with no body.
                    return Some(Item {
                        kind: ItemKind::Fn,
                        name,
                        line,
                        start: kw,
                        end: j,
                        body: None,
                        in_test,
                        children: Vec::new(),
                    });
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// `struct`/`enum`/`union` with brace, tuple, or unit body.
    fn parse_adt(&mut self, kw: usize, to: usize, line: u32, in_test: bool) -> Option<Item> {
        let kind = match self.text(kw) {
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            _ => ItemKind::Union,
        };
        let name = self.ident_at(kw + 1)?;
        let mut j = self.skip_generics(kw + 2, to);
        // Tuple struct `(…)` then `;`, where clause, brace body, or `;`.
        let mut angle = 0i32;
        while j < to {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" => j = self.match_delim(j, "(", ")", to),
                "[" => j = self.match_delim(j, "[", "]", to),
                "{" if angle <= 0 => {
                    let close = self.match_delim(j, "{", "}", to);
                    return Some(Item {
                        kind,
                        name,
                        line,
                        start: kw,
                        end: close,
                        body: body_range(j, close),
                        in_test,
                        children: Vec::new(),
                    });
                }
                ";" if angle <= 0 => {
                    return Some(Item {
                        kind,
                        name,
                        line,
                        start: kw,
                        end: j,
                        body: None,
                        in_test,
                        children: Vec::new(),
                    });
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// `trait Name … { items }` — children are parsed (default-bodied
    /// methods are call-graph nodes).
    fn parse_trait(&mut self, kw: usize, to: usize, line: u32, in_test: bool) -> Option<Item> {
        let name = self.ident_at(kw + 1)?;
        let open = self.find_block_open(kw + 2, to)?;
        let close = self.match_delim(open, "{", "}", to);
        let children = match body_range(open, close) {
            Some((lo, hi)) => self.parse_items(lo, hi + 1, true).0,
            None => Vec::new(),
        };
        Some(Item {
            kind: ItemKind::Trait,
            name,
            line,
            start: kw,
            end: close,
            body: body_range(open, close),
            in_test,
            children,
        })
    }

    /// `impl [<…>] [Trait for] Type { items }` — `name` is the self
    /// type's final path segment.
    fn parse_impl(&mut self, kw: usize, to: usize, line: u32, in_test: bool) -> Option<Item> {
        let head = self.skip_generics(kw + 1, to);
        let open = self.find_block_open(head, to)?;
        // Self type: the segment after `for` when present, else the head
        // path itself. Take the last plain ident before generics/where.
        let mut seg_from = head;
        for j in head..open {
            if self.text(j) == "for" {
                seg_from = j + 1;
            }
            if self.text(j) == "where" {
                break;
            }
        }
        let mut name = String::new();
        for j in seg_from..open {
            let t = self.text(j);
            if t == "where" || t == "<" {
                break;
            }
            if is_ident_like(t) {
                name = t.to_string();
            }
        }
        let close = self.match_delim(open, "{", "}", to);
        let children = match body_range(open, close) {
            Some((lo, hi)) => self.parse_items(lo, hi + 1, true).0,
            None => Vec::new(),
        };
        Some(Item {
            kind: ItemKind::Impl,
            name,
            line,
            start: kw,
            end: close,
            body: body_range(open, close),
            in_test,
            children,
        })
    }

    /// `mod name;` or `mod name { items }`.
    fn parse_mod(&mut self, kw: usize, to: usize, line: u32, in_test: bool) -> Option<Item> {
        let name = self.ident_at(kw + 1)?;
        match self.text(kw + 2) {
            ";" => Some(Item {
                kind: ItemKind::Mod,
                name,
                line,
                start: kw,
                end: kw + 2,
                body: None,
                in_test,
                children: Vec::new(),
            }),
            "{" => {
                let open = kw + 2;
                let close = self.match_delim(open, "{", "}", to);
                let children = match body_range(open, close) {
                    Some((lo, hi)) => self.parse_items(lo, hi + 1, false).0,
                    None => Vec::new(),
                };
                Some(Item {
                    kind: ItemKind::Mod,
                    name,
                    line,
                    start: kw,
                    end: close,
                    body: body_range(open, close),
                    in_test,
                    children,
                })
            }
            _ => None,
        }
    }

    /// Finds the opening `{` of a block header, stepping over balanced
    /// groups and angle-bracketed generics.
    fn find_block_open(&self, from: usize, to: usize) -> Option<usize> {
        let mut angle = 0i32;
        let mut j = from;
        while j < to {
            match self.text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" => j = self.match_delim(j, "(", ")", to),
                "[" => j = self.match_delim(j, "[", "]", to),
                "{" if angle <= 0 => return Some(j),
                ";" if angle <= 0 => return None,
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Consumes an item that runs to its terminating `;` (use, const,
    /// static, type, extern crate), stepping over balanced groups (a
    /// `const X: [u8; 4] = { … };` initializer contains both).
    fn parse_to_semi(
        &mut self,
        kw: usize,
        to: usize,
        kind: ItemKind,
        name: String,
        line: u32,
        in_test: bool,
    ) -> Option<Item> {
        let mut j = kw + 1;
        while j < to {
            match self.text(j) {
                "(" => j = self.match_delim(j, "(", ")", to),
                "[" => j = self.match_delim(j, "[", "]", to),
                "{" => j = self.match_delim(j, "{", "}", to),
                ";" => {
                    return Some(Item {
                        kind,
                        name,
                        line,
                        start: kw,
                        end: j,
                        body: None,
                        in_test,
                        children: Vec::new(),
                    });
                }
                _ => {}
            }
            j += 1;
        }
        None
    }
}

fn delim_pair(open: &str) -> (&'static str, &'static str) {
    match open {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    }
}

fn is_ident_like(t: &str) -> bool {
    !t.is_empty()
        && t.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && !matches!(
            t,
            "fn" | "struct"
                | "enum"
                | "union"
                | "trait"
                | "impl"
                | "mod"
                | "use"
                | "const"
                | "static"
                | "type"
                | "extern"
                | "pub"
                | "where"
                | "for"
                | "in"
                | "let"
                | "match"
                | "if"
                | "else"
                | "return"
                | "while"
                | "loop"
        )
}

/// Inclusive sig range strictly inside `open`/`close` (None when empty).
fn body_range(open: usize, close: usize) -> Option<(usize, usize)> {
    (close > open + 1).then(|| (open + 1, close - 1))
}

/// Depth-first walk over an item tree, visiting every item once.
pub fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
    for item in items {
        f(item);
        walk(&item.children, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> Ast {
        parse(&SourceFile::parse("crates/core/src/x.rs", src))
    }

    fn names(items: &[Item]) -> Vec<(ItemKind, &str)> {
        items.iter().map(|i| (i.kind, i.name.as_str())).collect()
    }

    #[test]
    fn parses_plain_items() {
        let ast = parse_src(
            "use std::fmt;\n\
             pub struct S { a: u32 }\n\
             pub enum E { A, B }\n\
             pub fn f(x: u32) -> u32 { x + 1 }\n\
             const N: usize = 3;\n\
             static G: u8 = 0;\n\
             type T = Vec<u32>;\n",
        );
        assert_eq!(
            names(&ast.items),
            vec![
                (ItemKind::Use, ""),
                (ItemKind::Struct, "S"),
                (ItemKind::Enum, "E"),
                (ItemKind::Fn, "f"),
                (ItemKind::Const, "N"),
                (ItemKind::Static, "G"),
                (ItemKind::TypeAlias, "T"),
            ]
        );
    }

    #[test]
    fn fn_bodies_are_token_ranges() {
        let ast = parse_src("fn f() { a.b(); }\nfn empty() {}\n");
        assert_eq!(ast.items.len(), 2);
        assert!(ast.items[0].body.is_some());
        assert_eq!(ast.items[1].body, None, "empty body has no inner range");
    }

    #[test]
    fn impl_names_the_self_type() {
        let ast = parse_src(
            "impl Pager { fn write(&mut self) {} }\n\
             impl fmt::Display for MetricsReport { fn fmt(&self) {} }\n\
             impl<'a> Iterator for Frontier<'a> { fn next(&mut self) {} }\n",
        );
        let impls: Vec<&str> = ast.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(impls, vec!["Pager", "MetricsReport", "Frontier"]);
        assert_eq!(names(&ast.items[0].children), vec![(ItemKind::Fn, "write")]);
    }

    #[test]
    fn nested_mods_nest() {
        let ast = parse_src("mod a { mod b { fn deep() {} } fn mid() {} }\nmod decl;\n");
        assert_eq!(ast.items.len(), 2);
        let a = &ast.items[0];
        assert_eq!(a.name, "a");
        assert_eq!(names(&a.children), vec![(ItemKind::Mod, "b"), (ItemKind::Fn, "mid")]);
        assert_eq!(names(&a.children[0].children), vec![(ItemKind::Fn, "deep")]);
        assert_eq!(ast.items[1].end - ast.items[1].start, 2, "mod decl; spans 3 tokens");
    }

    #[test]
    fn cfg_test_marks_items() {
        let ast = parse_src("#[cfg(test)]\nmod tests { fn t() {} }\nfn live() {}\n");
        assert!(ast.items[0].in_test);
        assert!(ast.items[0].children[0].in_test);
        assert!(!ast.items[1].in_test);
    }

    #[test]
    fn macro_invocation_at_item_position() {
        let ast = parse_src(
            "registry_enum! {\n    pub enum Metric { A => \"a.b\", }\n}\n\
             thread_local!(static X: u8 = 0;);\nfn after() {}\n",
        );
        assert_eq!(ast.items[0].kind, ItemKind::MacroCall);
        assert_eq!(ast.items[0].name, "registry_enum");
        assert!(ast.items[0].body.is_some());
        assert_eq!(ast.items[1].kind, ItemKind::MacroCall);
        assert_eq!(names(&ast.items[2..]), vec![(ItemKind::Fn, "after")]);
    }

    #[test]
    fn where_clauses_and_impl_trait() {
        let ast = parse_src(
            "pub fn g<T: Clone>(x: T) -> impl Iterator<Item = T>\nwhere\n    T: Send,\n{ \
             std::iter::once(x) }\nfn after() {}\n",
        );
        assert_eq!(names(&ast.items), vec![(ItemKind::Fn, "g"), (ItemKind::Fn, "after")]);
    }

    #[test]
    fn recovery_skips_garbage_to_next_item() {
        let ast = parse_src(");;;= = = }{ garbage !!\nfn survivor() {}\nstruct Also;\n");
        let got = names(&ast.items);
        assert!(got.contains(&(ItemKind::Fn, "survivor")), "{got:?}");
        assert!(got.contains(&(ItemKind::Struct, "Also")), "{got:?}");
    }

    #[test]
    fn trait_with_default_and_required_methods() {
        let ast =
            parse_src("trait T { fn required(&self);\n fn provided(&self) { self.required() } }\n");
        let t = &ast.items[0];
        assert_eq!(t.kind, ItemKind::Trait);
        assert_eq!(
            names(&t.children),
            vec![(ItemKind::Fn, "required"), (ItemKind::Fn, "provided")]
        );
        assert_eq!(t.children[0].body, None);
        assert!(t.children[1].body.is_some());
    }
}
