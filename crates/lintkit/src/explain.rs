//! Long-form lint documentation for `udlint --explain <lint>`.
//!
//! Each entry says what the lint matches, *why the contract exists*,
//! and what a compliant fix looks like — so a CI failure is
//! self-explaining without opening DESIGN.md. The registry here must
//! cover exactly [`crate::LINTS`] (enforced by a unit test), so adding
//! a lint without documenting it does not compile past the suite.

/// Returns the long-form explanation for `lint`, if it is registered.
pub fn explain(lint: &str) -> Option<&'static str> {
    EXPLANATIONS.iter().find(|(name, _)| *name == lint).map(|(_, text)| *text)
}

const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "unwrap-in-core",
        "What: `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`, or\n\
         `unimplemented!` in non-test library code of a panic-free crate (core,\n\
         relstore, hetgraph, retrieval, storekit).\n\
         Why: the engine's error contract (DESIGN.md §8) is typed degradation —\n\
         bad input quarantines or downgrades, it never aborts the process. A\n\
         panic in a serving path is an availability bug.\n\
         Fix: return the crate's typed error, or degrade through the ladder. If\n\
         the invariant is locally provable, suppress with the proof as reason.",
    ),
    (
        "slice-index",
        "What: direct `x[i]` indexing in panic-free crates (pedantic only).\n\
         Why: indexing panics on out-of-bounds — same availability contract as\n\
         unwrap-in-core, but noisy enough to stay behind --pedantic.\n\
         Fix: `.get(i)` with typed handling, or iterate instead of indexing.",
    ),
    (
        "unordered-iteration",
        "What: iterating a HashMap/HashSet where the order can reach floats,\n\
         traces, or returned collections without an interposed sort.\n\
         Why: hash iteration order varies across runs and platforms; the engine\n\
         promises byte-identical answers at any thread count, so any\n\
         order-sensitive fold over a hash container is a determinism bug.\n\
         Fix: use BTreeMap/BTreeSet, or collect-and-sort before folding.",
    ),
    (
        "wallclock-in-hot-path",
        "What: a direct `Instant::now()` / `SystemTime::now()` call site outside\n\
         crates/tracekit/src/wall.rs.\n\
         Why: wall time is nondeterministic input. All timing flows through\n\
         tracekit's wall module, which is compiled out of the deterministic\n\
         replay surface (DESIGN.md §9).\n\
         Fix: take a Stopwatch/TimingReport from tracekit::wall, or meter\n\
         logical resources (ResourceMeter) instead of time.",
    ),
    (
        "raw-thread-spawn",
        "What: `std::thread::spawn` or `thread::Builder` outside parkit.\n\
         Why: raw threads race; parkit's fork-join pool schedules work\n\
         deterministically so merges happen in a fixed order at any width.\n\
         Fix: express the parallelism as parkit tasks.",
    ),
    (
        "string-metric-label",
        "What: a string literal or dynamically built name where the trace/metric\n\
         API expects a registry constant.\n\
         Why: the namespace is closed (DESIGN.md §9): every series is a\n\
         registry_enum! variant, so dashboards and goldens enumerate it\n\
         statically and typos cannot mint phantom series.\n\
         Fix: add a variant to the registry in crates/tracekit/src/metrics.rs\n\
         and record through it.",
    ),
    (
        "nondeterministic-env",
        "What: `std::env::var`/`vars` outside the blessed UNISEM_* configuration\n\
         surface.\n\
         Why: ambient environment reads make behavior depend on the shell that\n\
         launched the process; the deterministic replay contract allows only\n\
         the documented UNISEM_* knobs, read at one choke point.\n\
         Fix: plumb the value through config, or add a documented UNISEM_* knob.",
    ),
    (
        "non-path-dependency",
        "What: a Cargo.toml dependency that is not path-only/workspace-inherited.\n\
         Why: the workspace builds offline by policy (DESIGN.md §7); a crates.io\n\
         dependency would break the hermetic build and widen the trust surface.\n\
         Fix: vendor the functionality into a workspace crate.",
    ),
    (
        "suppression-syntax",
        "What: a malformed `udlint:` comment — bad grammar, unknown lint name,\n\
         missing `-- <reason>`, or a suppression that matches no diagnostic.\n\
         Why: suppressions are the audited escape hatch; an unused one is a\n\
         stale justification waiting to mislead a reviewer, and an unknown name\n\
         silences nothing while looking like it does.\n\
         Fix: `// udlint: allow(<lint>) -- <reason>` on (or above) the offending\n\
         line; delete suppressions that no longer match.",
    ),
    (
        "transitive-wallclock",
        "What: a non-test function whose *call graph* reaches an\n\
         `Instant::now()`/`SystemTime::now()` read outside tracekit::wall, even\n\
         though its own body never touches a clock. The diagnostic message\n\
         carries the call chain down to the offending read.\n\
         Why: the token-level wallclock lint sees one file at a time, so a\n\
         clock read wrapped in a helper crate leaks into every caller\n\
         invisibly. Determinism is a whole-graph property: if any path from a\n\
         serving function reaches the clock, replay diverges.\n\
         How: udlint parses every engine file to an item AST, builds a\n\
         function-level call graph (name-based resolution, over-approximate by\n\
         design), seeds a reverse BFS at each direct reader, and reports every\n\
         reached function. tracekit::wall neither seeds nor propagates: it is\n\
         the blessed boundary, so *calling* it is fine.\n\
         Fix: remove the clock read below you (preferred), or route the timing\n\
         through tracekit::wall.",
    ),
    (
        "uncovered-io-site",
        "What: a storekit function performing raw I/O (`write_all`, `sync_all`,\n\
         `sync_data`, `set_len`) that is not in the forward call closure of any\n\
         function that consults the fault registry (`…check(Site::…)`).\n\
         Why: durability claims rest on the crash matrix (DESIGN.md §12–13):\n\
         every write/flush can be made to fail or tear through the closed\n\
         11-site faultkit registry. An I/O call the injector cannot reach is a\n\
         crash window no test exercises — exactly the write path that eats\n\
         data in production.\n\
         How: the call graph is walked forward from every `check(Site::…)`\n\
         body; coverage anywhere above the I/O counts, because the injector\n\
         fires before the syscall on that path.\n\
         Fix: thread the fault hook through the new I/O path (add a check at\n\
         an existing site, or extend the site registry deliberately); suppress\n\
         only for I/O that provably precedes any logical state (with the proof\n\
         as the reason).",
    ),
    (
        "dead-registry-entry",
        "What: a `registry_enum!` variant (Metric/Hist/Stage) in\n\
         crates/tracekit/src/metrics.rs with no `Enum::Variant` reference in\n\
         non-test engine or bench/detkit code.\n\
         Why: the closed namespace keeps phantom series out, but it can rot in\n\
         the other direction — a variant outlives its last recording site and\n\
         dashboards show a forever-zero series that reads as a broken engine.\n\
         How: variants are parsed out of the macro invocation bodies (the AST\n\
         keeps macro token ranges); references inside metrics.rs itself do not\n\
         count, since the generated ALL/name tables mention every variant by\n\
         construction.\n\
         Fix: delete the variant, or wire its recording site back up.",
    ),
    (
        "meter-mirror",
        "What: the two answer paths in crates/core/src/engine.rs\n\
         (`answer_ladder`, `answer_planned`) write different sets of\n\
         ResourceMeter fields anywhere in their core-crate call closures.\n\
         Why: the planner is differential-tested against the ladder on answer\n\
         bytes — but the per-query meter is observable too (scalebench,\n\
         observability suite), and a stage metered on one path only skews every\n\
         A/B comparison while the answers still match byte-for-byte.\n\
         How: the field list is parsed from the ResourceMeter struct itself, so\n\
         new fields automatically join the contract; closures are restricted to\n\
         the core crate because tracekit's own merge/fields helpers touch every\n\
         field by construction.\n\
         Fix: meter the resource on both paths (usually by sharing the helper\n\
         that does the work), or on neither.",
    ),
];

#[cfg(test)]
mod tests {
    #[test]
    fn every_lint_has_an_explanation_and_vice_versa() {
        for (name, _) in crate::LINTS {
            assert!(super::explain(name).is_some(), "lint `{name}` has no --explain text");
        }
        for (name, _) in super::EXPLANATIONS {
            assert!(
                crate::LINTS.iter().any(|(l, _)| l == name),
                "--explain documents unknown lint `{name}`"
            );
        }
        assert!(super::explain("not-a-lint").is_none());
    }
}
