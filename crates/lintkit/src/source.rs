//! Per-file analysis context: lexed tokens, `#[cfg(test)]` span marking,
//! and the suppression grammar.
//!
//! # Test-span marking
//!
//! The old awk gates stopped scanning a file at the first `#[cfg(test)]`
//! line — so test modules kept their unwraps, but so did any real code
//! that happened to follow one. Here the attribute is recognized in the
//! token stream and only the *item it annotates* (attribute through the
//! matching close brace, or through `;` for brace-less items) is marked
//! `in_test`. Works for `mod`, `fn`, `impl`, `use`, in any file position.
//!
//! # Suppression grammar
//!
//! ```text
//! // udlint: allow(<lint-name>) -- <reason>
//! ```
//!
//! The reason is mandatory; a missing reason or unknown lint name is
//! itself a diagnostic (`suppression-syntax`). A suppression comment at
//! the end of a code line covers that line; a comment alone on its line
//! covers the next line that has code on it. Active suppressions are
//! counted and reported — ci.sh compares the count against the committed
//! `lint-budget.txt` so the total can only shrink without review.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed, well-formed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the suppression *covers* (diagnostics on this line with a
    /// matching lint are suppressed).
    pub target_line: u32,
    /// Line the comment itself sits on.
    pub comment_line: u32,
    /// Lint name inside `allow(…)`.
    pub lint: String,
    /// The mandatory justification after `--`.
    pub reason: String,
}

/// A malformed `udlint:` comment (missing reason, bad syntax, unknown
/// lint); reported as a `suppression-syntax` diagnostic by the runner.
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Line of the malformed comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// Outcome of scanning one comment for the suppression marker.
enum AllowParse {
    NotASuppression,
    Ok { lint: String, reason: String },
    Bad(String),
}

/// Parses the suppression grammar out of a comment's text (the comment
/// markers themselves may be `//`, `///`, or `/* … */`).
fn parse_allow(comment: &str) -> AllowParse {
    let Some(pos) = comment.find("udlint:") else {
        return AllowParse::NotASuppression;
    };
    let rest = comment[pos + "udlint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return AllowParse::Bad("expected `allow(<lint>) -- <reason>` after `udlint:`".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::Bad("expected `(` after `udlint: allow`".into());
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Bad("unclosed `allow(` in suppression".into());
    };
    let lint = rest[..close].trim().to_string();
    if lint.is_empty() {
        return AllowParse::Bad("empty lint name in `allow()`".into());
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix("--") else {
        return AllowParse::Bad(format!("suppression of `{lint}` is missing `-- <reason>`"));
    };
    let reason = reason.trim().trim_end_matches("*/").trim().to_string();
    if reason.is_empty() {
        return AllowParse::Bad(format!("suppression of `{lint}` has an empty reason"));
    }
    AllowParse::Ok { lint, reason }
}

/// One lexed-and-analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The token stream (comments included).
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens, in order.
    pub sig: Vec<usize>,
    /// Well-formed suppressions found in comments.
    pub suppressions: Vec<Suppression>,
    /// Malformed `udlint:` comments.
    pub bad_suppressions: Vec<BadSuppression>,
}

impl SourceFile {
    /// Lexes `src`, marks `#[cfg(test)]` spans, and extracts suppressions.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let mut toks = lex(src);
        let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        mark_test_spans(&mut toks, &sig);
        let (suppressions, bad_suppressions) = extract_suppressions(&toks);
        SourceFile { rel_path: rel_path.to_string(), toks, sig, suppressions, bad_suppressions }
    }

    /// Text of the significant token at sig-index `k` (empty past the end).
    pub fn sig_text(&self, k: usize) -> &str {
        self.sig.get(k).map(|&i| self.toks[i].text.as_str()).unwrap_or("")
    }

    /// Kind of the significant token at sig-index `k`.
    pub fn sig_kind(&self, k: usize) -> Option<TokKind> {
        self.sig.get(k).map(|&i| self.toks[i].kind)
    }

    /// Line of the significant token at sig-index `k`.
    pub fn sig_line(&self, k: usize) -> u32 {
        self.sig.get(k).map(|&i| self.toks[i].line).unwrap_or(0)
    }

    /// True when the significant token at sig-index `k` is in a test span.
    pub fn sig_in_test(&self, k: usize) -> bool {
        self.sig.get(k).map(|&i| self.toks[i].in_test).unwrap_or(false)
    }

    /// True when the texts of significant tokens starting at `k` equal
    /// `pat` exactly.
    pub fn sig_matches(&self, k: usize, pat: &[&str]) -> bool {
        pat.iter().enumerate().all(|(j, p)| self.sig_text(k + j) == *p)
    }
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` items as `in_test`.
fn mark_test_spans(toks: &mut [Tok], sig: &[usize]) {
    let mut k = 0usize;
    while k < sig.len() {
        if toks[sig[k]].text == "#" && k + 1 < sig.len() && toks[sig[k + 1]].text == "[" {
            let attr_start = k;
            // Find the matching `]` (attributes can nest brackets).
            let mut depth = 0usize;
            let mut j = k + 1;
            while j < sig.len() {
                match toks[sig[j]].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let attr_end = j; // sig index of `]` (or EOF)
            let inner: Vec<&str> =
                (attr_start + 2..attr_end).map(|m| toks[sig[m]].text.as_str()).collect();
            let is_test_attr = inner == ["test"] || inner == ["cfg", "(", "test", ")"];
            if is_test_attr {
                let end = item_end(toks, sig, attr_end + 1);
                // Mark the whole raw-token range (comments included) so
                // suppression scans can tell they sit in test code.
                let lo = sig[attr_start];
                let hi = sig.get(end.min(sig.len() - 1)).copied().unwrap_or(toks.len() - 1);
                for t in toks.iter_mut().take(hi + 1).skip(lo) {
                    t.in_test = true;
                }
                k = end + 1;
                continue;
            }
            k = attr_end + 1;
            continue;
        }
        k += 1;
    }
}

/// Returns the sig-index of the last token of the item starting at `from`:
/// scans past any further attributes, then to the matching `}` of the
/// item's first brace block, or to a `;` before any brace opens.
fn item_end(toks: &[Tok], sig: &[usize], from: usize) -> usize {
    let mut k = from;
    let mut brace_depth = 0usize;
    let mut opened = false;
    while k < sig.len() {
        match toks[sig[k]].text.as_str() {
            "{" => {
                brace_depth += 1;
                opened = true;
            }
            "}" => {
                brace_depth = brace_depth.saturating_sub(1);
                if opened && brace_depth == 0 {
                    return k;
                }
            }
            ";" if !opened => return k,
            _ => {}
        }
        k += 1;
    }
    sig.len().saturating_sub(1)
}

/// Extracts suppressions from comment tokens, resolving each to the line
/// it covers.
fn extract_suppressions(toks: &[Tok]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        match parse_allow(&t.text) {
            AllowParse::NotASuppression => {}
            AllowParse::Bad(problem) => bad.push(BadSuppression { line: t.line, problem }),
            AllowParse::Ok { lint, reason } => {
                // Same line as preceding code → covers that line; comment
                // alone on its line → covers the next code line.
                let code_before = toks[..i]
                    .iter()
                    .rev()
                    .take_while(|p| p.line == t.line)
                    .any(|p| !p.is_comment());
                let target_line = if code_before {
                    t.line
                } else {
                    toks[i + 1..].iter().find(|n| !n.is_comment()).map(|n| n.line).unwrap_or(t.line)
                };
                ok.push(Suppression { target_line, comment_line: t.line, lint, reason });
            }
        }
    }
    (ok, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_marks_module_span_only() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn also_live() { z.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let unwraps: Vec<bool> =
            f.toks.iter().filter(|t| t.text == "unwrap").map(|t| t.in_test).collect();
        assert_eq!(unwraps, vec![false, true, false], "only the mod body is test scope");
    }

    #[test]
    fn cfg_test_on_function() {
        let src = "#[cfg(test)]\nfn helper() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let unwraps: Vec<bool> =
            f.toks.iter().filter(|t| t.text == "unwrap").map(|t| t.in_test).collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_test_braceless_item() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { b.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let unwraps: Vec<bool> =
            f.toks.iter().filter(|t| t.text == "unwrap").map(|t| t.in_test).collect();
        assert_eq!(unwraps, vec![false]);
    }

    #[test]
    fn cfg_not_test_is_not_test_scope() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.toks.iter().filter(|t| t.text == "unwrap").all(|t| !t.in_test));
    }

    #[test]
    fn test_attribute_with_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn t() { a.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.toks.iter().filter(|t| t.text == "unwrap").all(|t| t.in_test));
    }

    #[test]
    fn suppression_same_line_and_next_line() {
        let src = "fn f() {\n\
                   let a = x.unwrap(); // udlint: allow(unwrap-in-core) -- init is infallible\n\
                   // udlint: allow(unordered-iteration) -- per-key accumulation\n\
                   for v in map.iter() {}\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].target_line, 2);
        assert_eq!(f.suppressions[0].lint, "unwrap-in-core");
        assert_eq!(f.suppressions[0].reason, "init is infallible");
        assert_eq!(f.suppressions[1].target_line, 4, "standalone comment covers next line");
    }

    #[test]
    fn suppression_requires_reason() {
        let src = "let a = x.unwrap(); // udlint: allow(unwrap-in-core)\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.suppressions.is_empty());
        assert_eq!(f.bad_suppressions.len(), 1);
        assert!(f.bad_suppressions[0].problem.contains("missing"));
    }

    #[test]
    fn suppression_bad_syntax_flagged() {
        for src in [
            "// udlint: deny(x) -- r\n",
            "// udlint: allow unwrap -- r\n",
            "// udlint: allow() -- r\n",
            "// udlint: allow(x) -- \n",
        ] {
            let f = SourceFile::parse("crates/core/src/x.rs", src);
            assert_eq!(f.bad_suppressions.len(), 1, "src: {src}");
        }
    }

    #[test]
    fn plain_comments_are_not_suppressions() {
        let f = SourceFile::parse("x.rs", "// nothing to see here\nfn f() {}\n");
        assert!(f.suppressions.is_empty() && f.bad_suppressions.is_empty());
    }
}
