//! A std-only Rust lexer, exact enough for linting.
//!
//! The awk gates this crate replaces worked line-by-line on raw text, so a
//! `.unwrap()` inside a raw string, a `Degradation::new(` split across two
//! lines, or an `unwrap` in a block comment all confused them. This lexer
//! produces a real token stream instead:
//!
//! - raw strings (`r"…"`, `r#"…"#`, any hash depth, plus `b`/`br`/`c`/`cr`
//!   prefixes) are single [`TokKind::Str`] tokens — their *contents* can
//!   never match a code pattern;
//! - block comments nest (`/* /* */ */`), line/doc comments are kept as
//!   tokens so the suppression grammar can read them;
//! - `'a'` (char literal) and `'a` (lifetime) are distinguished the way
//!   rustc does it, so `Vec<'a>` never eats the rest of the file;
//! - numbers absorb exponents (`1.0e-3`) without swallowing `0..n` ranges.
//!
//! The lexer never fails: unknown bytes become one-byte [`TokKind::Punct`]
//! tokens. Every token records the 1-based line it starts on.

/// Token classes, deliberately coarse — passes match on text, not grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unwrap`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Any string literal, raw or not, byte or not, with quotes/prefix.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base, suffix included).
    Num,
    /// One punctuation byte (`.`, `#`, `{`, …).
    Punct,
    /// `// …` comment (doc comments `///` and `//!` included), no newline.
    LineComment,
    /// `/* … */` comment, nesting handled; may span lines.
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Set by [`crate::source::SourceFile`]: token lies inside a
    /// `#[cfg(test)]` item (or the file is wholly test scope).
    pub in_test: bool,
}

impl Tok {
    fn new(kind: TokKind, text: &str, line: u32) -> Tok {
        Tok { kind, text: text.to_string(), line, in_test: false }
    }

    /// True for comment tokens (which passes skip).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens. Never fails; see module docs for guarantees.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { b: src.as_bytes(), src, i: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.char_or_lifetime(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    // Operators that passes match as single tokens are
                    // glued (`::`, `->`, `=>`, `..`); everything else —
                    // including UTF-8 continuation bytes outside literals,
                    // which don't occur in valid code positions — degrades
                    // to one-byte Punct tokens.
                    let rest = &self.b[self.i..];
                    let len = if rest.starts_with(b"..=") || rest.starts_with(b"...") {
                        3
                    } else if rest.starts_with(b"::")
                        || rest.starts_with(b"->")
                        || rest.starts_with(b"=>")
                        || rest.starts_with(b"..")
                    {
                        2
                    } else {
                        1
                    };
                    let end = (self.i + len).min(self.b.len());
                    self.push(TokKind::Punct, self.i, end);
                    self.i = end;
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize) {
        // Slicing on a non-char boundary can't happen for the token kinds
        // we produce (ASCII delimiters), but guard anyway: widen to the
        // nearest boundaries rather than panicking inside the linter.
        let mut s = start;
        let mut e = end.min(self.src.len());
        while s > 0 && !self.src.is_char_boundary(s) {
            s -= 1;
        }
        while e < self.src.len() && !self.src.is_char_boundary(e) {
            e += 1;
        }
        self.toks.push(Tok::new(kind, &self.src[s..e], self.line));
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(TokKind::LineComment, start, self.i);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let mut depth = 0usize;
        while self.i < self.b.len() {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        let line = self.line;
        self.line = start_line;
        self.push(TokKind::BlockComment, start, self.i);
        self.line = line;
    }

    /// Cooked string starting at `start` (which may be before a `b`/`c`
    /// prefix); `self.i` is at the opening quote.
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2.min(self.b.len() - self.i),
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let line = self.line;
        self.line = start_line;
        self.push(TokKind::Str, start, self.i);
        self.line = line;
    }

    /// Raw string starting at `start`; `self.i` is at the first `#` or the
    /// opening quote.
    fn raw_string(&mut self, start: usize) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote (caller guaranteed it)
        'scan: while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
            } else if self.b[self.i] == b'"' {
                // Need `hashes` trailing #s to close.
                let mut j = self.i + 1;
                let mut seen = 0usize;
                while seen < hashes && self.b.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    self.i = j;
                    break 'scan;
                }
            }
            self.i += 1;
        }
        let line = self.line;
        self.line = start_line;
        self.push(TokKind::Str, start, self.i);
        self.line = line;
    }

    /// Distinguishes `'a'` / `'\n'` / `b'x'` (char literals) from `'a` /
    /// `'static` (lifetimes): a char literal closes with `'` right after
    /// one (possibly escaped) character; a lifetime is `'` + ident with no
    /// closing quote.
    fn char_or_lifetime(&mut self) {
        let start = self.i;
        self.i += 1; // opening '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                self.i += 2.min(self.b.len() - self.i);
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    self.i += 1;
                }
                self.i = (self.i + 1).min(self.b.len());
                self.push(TokKind::Char, start, self.i);
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'x' (char) or 'ident (lifetime). Scan the ident.
                let mut j = self.i;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') && j == self.i + 1 {
                    // Exactly one ASCII ident char then a quote: 'x'.
                    self.i = j + 1;
                    self.push(TokKind::Char, start, self.i);
                } else {
                    // Lifetime ('a, 'static, '_): no closing quote consumed.
                    self.i = j;
                    self.push(TokKind::Lifetime, start, self.i);
                }
            }
            Some(b'_') => {
                self.i += 1;
                self.push(TokKind::Lifetime, start, self.i);
            }
            Some(_) => {
                // Non-ident char: 'é', ' ', etc. — char literal; find the
                // closing quote within a few bytes.
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    if self.b[self.i] == b'\n' {
                        // Stray quote; bail as Punct to stay line-accurate.
                        self.push(TokKind::Punct, start, start + 1);
                        self.i = start + 1;
                        return;
                    }
                    self.i += 1;
                }
                self.i = (self.i + 1).min(self.b.len());
                self.push(TokKind::Char, start, self.i);
            }
            None => {
                self.push(TokKind::Punct, start, self.i);
            }
        }
    }

    /// An identifier, or a string/char literal behind an `r`/`b`/`c`
    /// prefix (`r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `b'x'`, `c"…"`).
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let ident = &self.src[start..self.i];
        let next = self.peek(0);
        match ident {
            "r" | "br" | "cr" => {
                if next == Some(b'"') {
                    return self.raw_string(start);
                }
                if next == Some(b'#') {
                    // `r#"…"#` raw string, or `r#ident` raw identifier.
                    let mut j = self.i;
                    while self.b.get(j) == Some(&b'#') {
                        j += 1;
                    }
                    if self.b.get(j) == Some(&b'"') {
                        return self.raw_string(start);
                    }
                    if ident == "r" && is_ident_start(self.b.get(j).copied().unwrap_or(0)) {
                        // Raw identifier r#foo: lex as one Ident token.
                        self.i = j;
                        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                            self.i += 1;
                        }
                        return self.push(TokKind::Ident, start, self.i);
                    }
                }
            }
            "b" | "c" => {
                if next == Some(b'"') {
                    return self.string(start);
                }
                if ident == "b" && next == Some(b'\'') {
                    // Byte char literal b'x': delegate, then re-brand the
                    // token to include the prefix.
                    self.char_or_lifetime();
                    if let Some(last) = self.toks.last_mut() {
                        last.text = self.src[start..self.i].to_string();
                    }
                    return;
                }
            }
            _ => {}
        }
        self.push(TokKind::Ident, start, self.i);
    }

    fn number(&mut self) {
        let start = self.i;
        while self.i < self.b.len() {
            let c = self.b[self.i];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.i += 1;
                // Exponent sign: `1e-3`, `2.5E+7`.
                if (c == b'e' || c == b'E')
                    && !self.src[start..self.i].starts_with("0x")
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                {
                    self.i += 1;
                }
            } else if c == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !self.src[start..self.i].contains('.')
            {
                // Fraction — but `0..n` must stay a range: only consume the
                // dot when a digit follows and we haven't taken one yet.
                self.i += 1;
            } else {
                break;
            }
        }
        self.push(TokKind::Num, start, self.i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = texts("let x = a.b();");
        let kinds: Vec<TokKind> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident,
                TokKind::Ident,
                TokKind::Punct,
                TokKind::Ident,
                TokKind::Punct,
                TokKind::Ident,
                TokKind::Punct,
                TokKind::Punct,
                TokKind::Punct,
            ]
        );
    }

    #[test]
    fn raw_string_hides_code() {
        let t = texts(r####"let s = r#"x.unwrap() "quoted" inner"#; s.len()"####);
        let strs: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Str).map(|(_, s)| s.as_str()).collect();
        assert_eq!(strs, vec![r###"r#"x.unwrap() "quoted" inner"#"###]);
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && s == "unwrap"));
    }

    #[test]
    fn raw_string_hash_depths() {
        let src = "r\"a\" r#\"b\"# r##\"c \"# inner\"##";
        let t = texts(src);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let t = texts("a /* outer /* inner.unwrap() */ still */ b");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "a".into()),
                (TokKind::BlockComment, "/* outer /* inner.unwrap() */ still */".into()),
                (TokKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let t = texts("let c: char = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n';");
        let chars: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, s)| s.as_str()).collect();
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
        let lifes: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, s)| s.as_str()).collect();
        assert_eq!(lifes, vec!["'a", "'a"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let t = texts("&'static str; &'_ u8");
        let lifes: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, s)| s.as_str()).collect();
        assert_eq!(lifes, vec!["'static", "'_"]);
    }

    #[test]
    fn byte_literals() {
        let t = texts(r##"b"bytes" b'x' br#"raw"#"##);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let t = texts("1.0e-3 0x1f 0..10 1_000 2.5E+7 x.0");
        let nums: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Num).map(|(_, s)| s.as_str()).collect();
        assert_eq!(nums, vec!["1.0e-3", "0x1f", "0", "10", "1_000", "2.5E+7", "0"]);
    }

    #[test]
    fn string_escapes() {
        let t = texts(r#"let s = "a\"b.unwrap()\\"; t"#);
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && s == "unwrap"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn line_numbers_across_multiline_tokens() {
        let src = "a\n/* c1\nc2 */\nb \"s1\ns2\" c";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5, "line counter advances across multiline string");
        let cm = toks.iter().find(|t| t.kind == TokKind::BlockComment).unwrap();
        assert_eq!(cm.line, 2, "block comment reports its starting line");
    }

    #[test]
    fn doc_comments_are_line_comments() {
        let t = texts("/// x.unwrap() in docs\n//! inner\nfn f() {}");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::LineComment).count(), 2);
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && s == "unwrap"));
    }

    #[test]
    fn raw_identifier() {
        let t = texts("let r#type = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "r#type"));
    }

    #[test]
    fn unterminated_tokens_do_not_hang() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?} lexes to something");
        }
    }
}
