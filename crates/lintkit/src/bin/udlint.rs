//! `udlint` — the workspace determinism linter.
//!
//! ```text
//! udlint [--root DIR] [--format text|json] [--deny all] [--pedantic]
//!        [--suppressions] [--list] [--explain LINT] [--dump-graph]
//! ```
//!
//! - `--root DIR`        tree to lint (default: current directory)
//! - `--format json`     machine-readable, byte-stable report
//! - `--deny all`        exit non-zero if any unsuppressed diagnostic
//! - `--pedantic`        also run the high-noise slice-index audit
//! - `--suppressions`    print only the active-suppression count, as the
//!                       last (and only) stdout line — ci.sh takes
//!                       `tail -n1` and compares it to lint-budget.txt
//! - `--list`            print the closed lint registry and exit
//! - `--explain LINT`    print the long-form contract documentation for
//!                       one lint and exit
//! - `--dump-graph`      print the workspace symbol graph (module tree,
//!                       function table, call graph) and exit; sorted
//!                       and byte-stable like every other report

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = String::from("text");
    let mut deny = false;
    let mut pedantic = false;
    let mut count_only = false;
    let mut dump_graph = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage("--root needs a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                _ => return usage("--format must be `text` or `json`"),
            },
            "--deny" => match args.next().as_deref() {
                Some("all") => deny = true,
                _ => return usage("only `--deny all` is supported"),
            },
            "--pedantic" => pedantic = true,
            "--suppressions" => count_only = true,
            "--dump-graph" => dump_graph = true,
            "--list" => {
                for (name, desc) in lintkit::LINTS {
                    println!("{name}\n    {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => match args.next() {
                Some(lint) => match lintkit::explain::explain(&lint) {
                    Some(text) => {
                        println!("{lint}\n\n{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "udlint: unknown lint `{lint}` (see `udlint --list` for the registry)"
                        );
                        return ExitCode::from(2);
                    }
                },
                None => return usage("--explain needs a lint name"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if dump_graph {
        return match lintkit::runner::build_workspace(&root) {
            Ok(ws) => {
                print!("{}", ws.render_graph());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("udlint: cannot walk {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }

    let report = match lintkit::runner::run(&root, pedantic) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("udlint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if count_only {
        println!("{}", report.suppressed.len());
        return ExitCode::SUCCESS;
    }

    match format.as_str() {
        "json" => print!("{}", report.render_json()),
        _ => print!("{}", report.render_text()),
    }

    if deny && !report.diagnostics.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("udlint: {err}");
    }
    eprintln!(
        "usage: udlint [--root DIR] [--format text|json] [--deny all] [--pedantic] \
         [--suppressions] [--list] [--explain LINT] [--dump-graph]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
