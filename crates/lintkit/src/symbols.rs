//! The workspace symbol graph: module tree, simplified `use` resolution,
//! and a function-level call graph across every engine crate.
//!
//! This is the cross-file layer the token passes lack. It is built from
//! the item ASTs of all engine sources at once:
//!
//! - **module tree** — each file's module path comes from the workspace
//!   layout (`crates/<k>/src/a/b.rs` → `<k>::a::b`, `mod.rs` collapsing,
//!   `lib.rs` as the crate root) and inline `mod` items nest below it;
//! - **function table** — every `fn` item (free, impl, trait-default),
//!   with its module path, owning type, body span, and test marking;
//! - **call graph** — call sites are token patterns (`name(…)`,
//!   `path::name(…)`, `.name(…)`) resolved against the function table:
//!   paths resolve through the file's `use` imports and the qualifier
//!   segment (type or module), bare and method calls fall back to
//!   narrowing by module, then crate, then name. Resolution is
//!   deliberately *over-approximate* — an ambiguous name links to every
//!   plausible target — because the semantic lints use reachability:
//!   extra edges can cost a suppressible false positive, missing edges
//!   would silently hide a contract leak.
//!
//! Everything is index-based and sorted, so the graph (and every report
//! derived from it) is byte-identical across runs and thread counts.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{self, Ast, Item, ItemKind};
use crate::lexer::TokKind;
use crate::passes::{file_scope, FileScope};
use crate::source::SourceFile;

/// One fully analyzed engine source file.
pub struct WsFile {
    /// Crate directory name under `crates/`.
    pub krate: String,
    /// Lexed tokens, suppressions, test spans.
    pub file: SourceFile,
    /// Item tree.
    pub ast: Ast,
    /// Module path of the file itself (first segment = crate name).
    pub module: Vec<String>,
}

/// One function in the workspace.
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Self type when declared in an `impl`/`trait` block.
    pub owner: Option<String>,
    /// Module path including inline `mod` nesting (first segment =
    /// crate name).
    pub module: Vec<String>,
    /// 1-based declaration line.
    pub line: u32,
    /// Body token range (sig indices, inclusive) — `None` for bodyless
    /// signatures and empty bodies.
    pub body: Option<(usize, usize)>,
    /// Declared under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
}

impl FnInfo {
    /// Display path: `crate::module::Type::name`.
    pub fn qual(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if let Some(owner) = &self.owner {
            parts.push(owner);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// The analyzed workspace: files, functions, and the call graph.
pub struct Workspace {
    /// Engine-scope files, sorted by path.
    pub files: Vec<WsFile>,
    /// Tooling-crate sources (bench, detkit) lexed for usage scans only —
    /// no diagnostics are ever attached to them.
    pub aux: Vec<SourceFile>,
    /// Every function, in (file, declaration) order.
    pub fns: Vec<FnInfo>,
    /// `callees[f]` — functions `f` calls (sorted, deduped). Includes
    /// the heuristic fallback edges; use for *taint* closures, where an
    /// extra edge costs a suppressible false positive.
    pub callees: Vec<Vec<usize>>,
    /// `callers[f]` — functions calling `f` (sorted, deduped).
    pub callers: Vec<Vec<usize>>,
    /// High-confidence subgraph of `callees`: only edges whose call
    /// site named its target exactly (same-module bare call,
    /// `self.`-receiver method, owner-/module-qualified path, or a
    /// `use`-bound name). Use for *coverage* closures, where a bogus
    /// edge would silently hide a violation.
    pub callees_sure: Vec<Vec<usize>>,
    /// Reverse of `callees_sure`.
    pub callers_sure: Vec<Vec<usize>>,
}

/// Tooling crates whose sources join the workspace for *usage scanning*
/// (a metric recorded only by the profiler is still live) without ever
/// receiving diagnostics. lintkit itself is excluded: its pass sources
/// spell lint patterns in code.
const AUX_CRATES: &[&str] = &["detkit", "bench"];

impl Workspace {
    /// Builds the symbol graph from `(rel_path, source)` pairs (any file
    /// outside engine/aux scope is ignored). Input order is irrelevant —
    /// files are sorted by path internally.
    pub fn build(sources: &[(String, String)]) -> Workspace {
        let mut sorted: Vec<&(String, String)> = sources.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));

        let mut files = Vec::new();
        let mut aux = Vec::new();
        for (rel_path, src) in sorted {
            match file_scope(rel_path) {
                FileScope::Engine { krate } => {
                    let file = SourceFile::parse(rel_path, src);
                    let ast = ast::parse(&file);
                    let module = file_module_path(&krate, rel_path);
                    files.push(WsFile { krate, file, ast, module });
                }
                FileScope::Ignored => {
                    let parts: Vec<&str> = rel_path.split('/').collect();
                    if parts.first() == Some(&"crates")
                        && parts.len() > 3
                        && parts.get(2) == Some(&"src")
                        && AUX_CRATES.contains(&parts[1])
                    {
                        aux.push(SourceFile::parse(rel_path, src));
                    }
                }
            }
        }

        // Function table.
        let mut fns: Vec<FnInfo> = Vec::new();
        for (fi, wsf) in files.iter().enumerate() {
            collect_fns(&wsf.ast.items, fi, &wsf.module, None, &mut fns);
        }

        // Name index for call resolution.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }

        let krates: BTreeSet<&str> = files.iter().map(|f| f.krate.as_str()).collect();
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut sure_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, f) in fns.iter().enumerate() {
            let Some((lo, hi)) = f.body else { continue };
            let wsf = &files[f.file];
            let uses = use_map(wsf);
            for site in call_sites(&wsf.file, lo, hi) {
                let (targets, sure) = resolve(&site, f, &fns, &by_name, &uses, &krates);
                for &callee in &targets {
                    if callee != i {
                        edges.insert((i, callee));
                        if sure {
                            sure_edges.insert((i, callee));
                        }
                    }
                }
            }
        }
        let adjacency = |set: &BTreeSet<(usize, usize)>| {
            let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
            let mut rev: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
            for &(a, b) in set {
                fwd[a].push(b);
                rev[b].push(a);
            }
            for v in rev.iter_mut() {
                v.sort_unstable();
            }
            (fwd, rev)
        };
        let (callees, callers) = adjacency(&edges);
        let (callees_sure, callers_sure) = adjacency(&sure_edges);

        Workspace { files, aux, fns, callees, callers, callees_sure, callers_sure }
    }

    /// Functions sorted by qualified name (then declaration order), for
    /// deterministic rendering.
    pub fn fns_by_qual(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.fns.len()).collect();
        order.sort_by(|&a, &b| (self.fns[a].qual(), a).cmp(&(self.fns[b].qual(), b)));
        order
    }

    /// True when fn `i`'s body contains the significant-token pattern
    /// `pat` (exact texts, in order, within the body range).
    pub fn body_matches(&self, i: usize, pat: &[&str]) -> bool {
        self.find_in_body(i, pat).is_some()
    }

    /// First sig-index in fn `i`'s body where `pat` matches.
    pub fn find_in_body(&self, i: usize, pat: &[&str]) -> Option<usize> {
        let (lo, hi) = self.fns[i].body?;
        let file = &self.files[self.fns[i].file].file;
        (lo..=hi.saturating_sub(pat.len().saturating_sub(1))).find(|&k| file.sig_matches(k, pat))
    }

    /// Breadth-first reachability from `seeds` along `adj` (which may be
    /// `callees` for forward or `callers` for reverse closure), skipping
    /// functions rejected by `admit`. Returns the closed set plus the BFS
    /// parent of every newly reached node (for path rendering).
    pub fn closure(
        &self,
        seeds: &[usize],
        adj: &[Vec<usize>],
        mut admit: impl FnMut(usize) -> bool,
    ) -> (BTreeSet<usize>, BTreeMap<usize, usize>) {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier: Vec<usize> = seeds.iter().copied().filter(|&s| admit(s)).collect();
        frontier.sort_unstable();
        seen.extend(frontier.iter().copied());
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &n in &frontier {
                for &m in &adj[n] {
                    if !seen.contains(&m) && admit(m) {
                        seen.insert(m);
                        parent.insert(m, n);
                        next.push(m);
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
        }
        (seen, parent)
    }

    /// Renders the module tree, function table, and call graph as a
    /// sorted, byte-stable text dump (`udlint --dump-graph`).
    pub fn render_graph(&self) -> String {
        let mut out = String::from("modules:\n");
        for f in &self.files {
            out.push_str(&format!("  {} = {}\n", f.module.join("::"), f.file.rel_path));
        }
        out.push_str("fns:\n");
        for &i in &self.fns_by_qual() {
            let f = &self.fns[i];
            let test = if f.in_test { " [test]" } else { "" };
            out.push_str(&format!(
                "  {} @ {}:{}{}\n",
                f.qual(),
                self.files[f.file].file.rel_path,
                f.line,
                test
            ));
        }
        out.push_str("calls:\n");
        let mut lines: Vec<String> = Vec::new();
        for (i, cs) in self.callees.iter().enumerate() {
            for &c in cs {
                let sure = if self.callees_sure[i].contains(&c) { " [sure]" } else { "" };
                lines.push(format!("  {} -> {}{}\n", self.fns[i].qual(), self.fns[c].qual(), sure));
            }
        }
        lines.sort();
        lines.dedup();
        for l in &lines {
            out.push_str(l);
        }
        out
    }
}

/// Module path of a file from the workspace layout.
fn file_module_path(krate: &str, rel_path: &str) -> Vec<String> {
    let mut module = vec![krate.to_string()];
    let parts: Vec<&str> = rel_path.split('/').collect();
    // crates/<k>/src/<rest…>; lib.rs and main.rs are the root.
    for (i, part) in parts.iter().enumerate().skip(3) {
        let is_last = i == parts.len() - 1;
        if is_last {
            match part.strip_suffix(".rs") {
                Some("lib") | Some("main") | Some("mod") | None => {}
                Some(stem) => module.push(stem.to_string()),
            }
        } else {
            module.push(part.to_string());
        }
    }
    module
}

/// Recursively collects `fn` items with their module/owner context.
fn collect_fns(
    items: &[Item],
    file: usize,
    module: &[String],
    owner: Option<&str>,
    out: &mut Vec<FnInfo>,
) {
    for item in items {
        match item.kind {
            ItemKind::Fn => out.push(FnInfo {
                file,
                name: item.name.clone(),
                owner: owner.map(str::to_string),
                module: module.to_vec(),
                line: item.line,
                body: item.body,
                in_test: item.in_test,
            }),
            ItemKind::Mod => {
                let mut nested = module.to_vec();
                nested.push(item.name.clone());
                collect_fns(&item.children, file, &nested, None, out);
            }
            ItemKind::Impl | ItemKind::Trait => {
                collect_fns(&item.children, file, module, Some(&item.name), out);
            }
            _ => {}
        }
    }
}

/// One textual call site extracted from a body.
struct CallSite {
    /// Path segments, last one being the called name (`["Stopwatch",
    /// "start"]`, `["helper"]`).
    segments: Vec<String>,
    /// `.name(…)` method-call form.
    method: bool,
    /// Method call directly on `self` (`self.name(…)`) — the receiver
    /// type is known to be the enclosing impl's.
    self_recv: bool,
}

/// Extracts call sites from the sig range `[lo, hi]`: `name(`,
/// `a::b::name(`, and `.name(` patterns, macro-argument positions
/// included (tokens inside macro invocations are plain tokens here).
fn call_sites(file: &SourceFile, lo: usize, hi: usize) -> Vec<CallSite> {
    let mut sites = Vec::new();
    for k in lo..=hi {
        if file.sig_kind(k) != Some(TokKind::Ident) || file.sig_text(k + 1) != "(" {
            continue;
        }
        let name = file.sig_text(k);
        if !is_callable_name(name) {
            continue;
        }
        if k > 0 && file.sig_text(k - 1) == "." {
            let self_recv = k >= 2 && file.sig_text(k - 2) == "self";
            sites.push(CallSite { segments: vec![name.to_string()], method: true, self_recv });
            continue;
        }
        // Walk path qualifiers backwards: `a :: b :: name`.
        let mut segments = vec![name.to_string()];
        let mut j = k;
        while j >= 2 && file.sig_text(j - 1) == "::" && file.sig_kind(j - 2) == Some(TokKind::Ident)
        {
            segments.insert(0, file.sig_text(j - 2).to_string());
            j -= 2;
        }
        // `fn name(` is a declaration, not a call.
        if j >= 1 && file.sig_text(j - 1) == "fn" {
            continue;
        }
        sites.push(CallSite { segments, method: false, self_recv: false });
    }
    sites
}

/// Identifiers that look like calls but never resolve to workspace fns —
/// control keywords and ubiquitous std constructors. Everything else is
/// resolved (an unknown name simply matches no function).
fn is_callable_name(name: &str) -> bool {
    !matches!(
        name,
        "if" | "match"
            | "while"
            | "for"
            | "return"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "Box"
            | "Vec"
            | "String"
            | "loop"
            | "move"
            | "fn"
    )
}

/// The file's import map: bound name → full path segments. Group imports
/// expand (`use a::{b, c as d}` binds `b` and `d`); globs are skipped
/// (resolution falls back to name narrowing).
fn use_map(wsf: &WsFile) -> BTreeMap<String, Vec<String>> {
    let mut map = BTreeMap::new();
    let mut uses: Vec<&Item> = Vec::new();
    ast::walk(&wsf.ast.items, &mut |item| {
        if item.kind == ItemKind::Use {
            uses.push(item);
        }
    });
    for item in uses {
        // Tokens between `use` and `;`.
        let toks: Vec<String> =
            (item.start + 1..item.end).map(|k| wsf.file.sig_text(k).to_string()).collect();
        expand_use_tree(&toks, &mut Vec::new(), &wsf.module, &mut map);
    }
    map
}

/// Recursive expansion of one `use` token list against `prefix`.
fn expand_use_tree(
    toks: &[String],
    prefix: &mut Vec<String>,
    module: &[String],
    out: &mut BTreeMap<String, Vec<String>>,
) {
    let mut path: Vec<String> = prefix.clone();
    let mut i = 0;
    while i < toks.len() {
        match toks[i].as_str() {
            "::" | "," => i += 1,
            "{" => {
                // Split the group body at top-level commas and recurse.
                let mut depth = 0usize;
                let mut j = i;
                let close = loop {
                    if j >= toks.len() {
                        break toks.len().saturating_sub(1);
                    }
                    match toks[j].as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break j;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                };
                let inner = &toks[i + 1..close];
                let mut start = 0usize;
                let mut depth = 0usize;
                for (j, t) in inner.iter().enumerate() {
                    match t.as_str() {
                        "{" => depth += 1,
                        "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => {
                            expand_use_tree(&inner[start..j], &mut path.clone(), module, out);
                            start = j + 1;
                        }
                        _ => {}
                    }
                }
                expand_use_tree(&inner[start..], &mut path.clone(), module, out);
                return;
            }
            "as" => {
                // `path as alias`: bind the alias to the path built so far.
                if let Some(alias) = toks.get(i + 1) {
                    out.insert(alias.clone(), normalize_path(&path, module));
                }
                return;
            }
            "*" => return, // glob: no bindings
            seg => {
                path.push(seg.to_string());
                i += 1;
            }
        }
    }
    if let Some(last) = path.last().cloned() {
        out.insert(last, normalize_path(&path, module));
    }
}

/// Resolves `crate`/`super`/`self` prefixes against the file's module
/// path and external `unisem_<k>` lib names against crate dir names.
fn normalize_path(path: &[String], module: &[String]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for (i, seg) in path.iter().enumerate() {
        match seg.as_str() {
            "crate" if i == 0 => out.push(module[0].clone()),
            "self" if i == 0 => out.extend(module.iter().cloned()),
            "super" => {
                if i == 0 {
                    out.extend(module.iter().cloned());
                }
                out.pop();
            }
            s => match s.strip_prefix("unisem_") {
                Some(dir) if i == 0 => out.push(dir.to_string()),
                _ => out.push(s.to_string()),
            },
        }
    }
    out
}

/// Resolves one call site to candidate functions, and whether the
/// match is *sure* (the site named its target exactly) or a heuristic
/// fallback. Sure edges feed the coverage graph; all edges feed the
/// taint graph — see the module docs for why the two lint families
/// need opposite approximation directions.
fn resolve(
    site: &CallSite,
    caller: &FnInfo,
    fns: &[FnInfo],
    by_name: &BTreeMap<&str, Vec<usize>>,
    uses: &BTreeMap<String, Vec<String>>,
    krates: &BTreeSet<&str>,
) -> (Vec<usize>, bool) {
    let name = match site.segments.last() {
        Some(n) => n.as_str(),
        None => return (Vec::new(), false),
    };
    let Some(cands) = by_name.get(name) else { return (Vec::new(), false) };

    if !site.method && site.segments.len() >= 2 {
        // Qualified call: expand the head through the import map, then
        // narrow by the qualifier segment (type, module, or crate).
        let mut segs: Vec<String> = site.segments.clone();
        if let Some(full) = uses.get(&segs[0]) {
            let mut expanded = full.clone();
            expanded.extend(segs[1..].iter().cloned());
            segs = expanded;
        } else {
            segs = normalize_path(&segs, &caller.module);
        }
        let qualifier = &segs[segs.len() - 2];
        let narrowed: Vec<usize> = if qualifier == "Self" {
            cands
                .iter()
                .copied()
                .filter(|&c| fns[c].owner == caller.owner && fns[c].file == caller.file)
                .collect()
        } else {
            let by_owner: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| fns[c].owner.as_deref() == Some(qualifier.as_str()))
                .collect();
            if !by_owner.is_empty() {
                by_owner
            } else {
                cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        fns[c].module.last() == Some(qualifier)
                            || (krates.contains(qualifier.as_str())
                                && fns[c].module.first() == Some(qualifier))
                    })
                    .collect()
            }
        };
        if !narrowed.is_empty() {
            return (narrowed, true);
        }
        // Unknown qualifier (`File::open`, `OpenOptions`, a generic
        // param): almost always a std/type call that happens to share a
        // workspace fn's name. Keep the name-match for the taint graph,
        // but never as a sure edge.
        return (cands.clone(), false);
    }

    if site.method {
        // `self.name(…)`: the receiver is the enclosing impl's type.
        if site.self_recv {
            let own: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| fns[c].owner == caller.owner && fns[c].file == caller.file)
                .collect();
            if !own.is_empty() {
                return (own, true);
            }
        }
        // Unknown receiver: over-approximate by name (same crate first).
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| fns[c].module.first() == caller.module.first())
            .collect();
        if !same_crate.is_empty() {
            return (same_crate, false);
        }
        return (cands.clone(), false);
    }

    // Bare call: a free fn in the same module (visible without a path)…
    let same_module: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| {
            fns[c].module == caller.module
                && (fns[c].owner.is_none() || fns[c].owner == caller.owner)
        })
        .collect();
    if !same_module.is_empty() {
        return (same_module, true);
    }
    // …or a name bound by `use other::helper;`.
    if let Some(full) = uses.get(name) {
        if full.len() >= 2 {
            let qualifier = &full[full.len() - 2];
            let narrowed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    fns[c].module.last() == Some(qualifier)
                        || fns[c].owner.as_deref() == Some(qualifier.as_str())
                })
                .collect();
            if !narrowed.is_empty() {
                return (narrowed, true);
            }
        }
    }
    let same_crate: Vec<usize> =
        cands.iter().copied().filter(|&c| fns[c].module.first() == caller.module.first()).collect();
    if !same_crate.is_empty() {
        return (same_crate, false);
    }
    (cands.clone(), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        Workspace::build(&sources)
    }

    fn fn_idx(w: &Workspace, qual: &str) -> usize {
        (0..w.fns.len()).find(|&i| w.fns[i].qual() == qual).unwrap_or_else(|| {
            panic!("no fn `{qual}`; have: {:?}", w.fns.iter().map(|f| f.qual()).collect::<Vec<_>>())
        })
    }

    #[test]
    fn module_paths_from_layout() {
        assert_eq!(file_module_path("core", "crates/core/src/lib.rs"), vec!["core"]);
        assert_eq!(
            file_module_path("core", "crates/core/src/planner/stats.rs"),
            vec!["core", "planner", "stats"]
        );
        assert_eq!(
            file_module_path("core", "crates/core/src/planner/mod.rs"),
            vec!["core", "planner"]
        );
    }

    #[test]
    fn call_graph_links_same_file_calls() {
        let w = ws(&[("crates/core/src/a.rs", "fn leaf() {}\nfn root() { leaf(); }\n")]);
        let root = fn_idx(&w, "core::a::root");
        let leaf = fn_idx(&w, "core::a::leaf");
        assert_eq!(w.callees[root], vec![leaf]);
        assert_eq!(w.callers[leaf], vec![root]);
    }

    #[test]
    fn call_graph_links_cross_crate_through_use() {
        let w = ws(&[
            (
                "crates/tracekit/src/wall.rs",
                "pub struct Stopwatch;\nimpl Stopwatch { pub fn start() -> Stopwatch { Stopwatch } }\n",
            ),
            (
                "crates/core/src/engine.rs",
                "use tracekit::wall::Stopwatch;\nfn answer() { let _ = Stopwatch::start(); }\n",
            ),
        ]);
        let answer = fn_idx(&w, "core::engine::answer");
        let start = fn_idx(&w, "tracekit::wall::Stopwatch::start");
        assert_eq!(w.callees[answer], vec![start]);
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "struct S;\nimpl S { fn go(&self) {} }\nfn drive(s: &S) { s.go(); }\n",
        )]);
        let drive = fn_idx(&w, "core::a::drive");
        let go = fn_idx(&w, "core::a::S::go");
        assert_eq!(w.callees[drive], vec![go]);
    }

    #[test]
    fn qualified_call_narrows_by_type() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "struct A;\nstruct B;\nimpl A { fn make() {} }\nimpl B { fn make() {} }\n\
             fn f() { A::make(); }\n",
        )]);
        let f = fn_idx(&w, "core::a::f");
        let a_make = fn_idx(&w, "core::a::A::make");
        assert_eq!(w.callees[f], vec![a_make], "B::make must not be linked");
    }

    #[test]
    fn use_groups_and_aliases_bind() {
        let w =
            ws(&[("crates/core/src/a.rs", "use crate::util::{alpha, beta as b};\nfn f() {}\n")]);
        let uses = use_map(&w.files[0]);
        assert_eq!(uses.get("alpha"), Some(&vec!["core".into(), "util".into(), "alpha".into()]));
        assert_eq!(uses.get("b"), Some(&vec!["core".into(), "util".into(), "beta".into()]));
    }

    #[test]
    fn graph_dump_is_sorted_and_stable() {
        let files = [
            ("crates/core/src/b.rs", "fn z() {}\nfn a() { z(); }\n"),
            ("crates/core/src/a.rs", "pub fn entry() {}\n"),
        ];
        let w1 = ws(&files);
        let mut rev = files;
        rev.reverse();
        let w2 = ws(&rev);
        assert_eq!(w1.render_graph(), w2.render_graph(), "input order must not matter");
        assert!(w1.render_graph().contains("core::b::a -> core::b::z"));
    }

    #[test]
    fn closure_walks_callers() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn sink() {}\nfn mid() { sink(); }\nfn top() { mid(); }\n",
        )]);
        let sink = fn_idx(&w, "core::a::sink");
        let (seen, parent) = w.closure(&[sink], &w.callers, |_| true);
        assert_eq!(seen.len(), 3, "sink, mid, top all reach");
        let top = fn_idx(&w, "core::a::top");
        let mid = fn_idx(&w, "core::a::mid");
        assert_eq!(parent.get(&top), Some(&mid), "path reconstruction: top <- mid");
    }
}
