//! Diagnostics and their text/JSON renderings.
//!
//! Ordering is part of the contract: diagnostics (and suppression
//! reports) sort by `(path, line, lint)` and the JSON rendering contains
//! nothing nondeterministic (no timestamps, no absolute paths), so two
//! runs over the same tree are byte-identical — CI can diff them.

use std::cmp::Ordering;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (see [`crate::LINTS`]).
    pub lint: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The canonical sort key.
    pub fn sort_key(&self) -> (&str, u32, &str, &str) {
        (&self.path, self.line, &self.lint, &self.message)
    }
}

impl PartialOrd for Diagnostic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Diagnostic {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

/// A diagnostic that was silenced by a suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The silenced diagnostic.
    pub diag: Diagnostic,
    /// The mandatory reason from the suppression comment.
    pub reason: String,
}

/// Escapes a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// `{"path":…,"line":…,"lint":…,"message":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            json_escape(&self.lint),
            json_escape(&self.message)
        )
    }

    /// `path:line: [lint] message` (the text format).
    pub fn to_text(&self) -> String {
        format!("{}:{}: [{}] {}", self.path, self.line, self.lint, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(path: &str, line: u32, lint: &str) -> Diagnostic {
        Diagnostic { path: path.into(), line, lint: lint.into(), message: "m".into() }
    }

    #[test]
    fn sorts_by_path_line_lint() {
        let mut v =
            vec![d("b.rs", 1, "x"), d("a.rs", 9, "x"), d("a.rs", 9, "a"), d("a.rs", 2, "z")];
        v.sort();
        let got: Vec<(String, u32, String)> =
            v.into_iter().map(|d| (d.path, d.line, d.lint)).collect();
        assert_eq!(
            got,
            vec![
                ("a.rs".into(), 2, "z".into()),
                ("a.rs".into(), 9, "a".into()),
                ("a.rs".into(), 9, "x".into()),
                ("b.rs".into(), 1, "x".into()),
            ]
        );
    }

    #[test]
    fn json_escapes_specials() {
        let mut diag = d("a\"b.rs", 3, "l");
        diag.message = "line\nbreak\tand \\ quote\"".into();
        let j = diag.to_json();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("line\\nbreak\\tand \\\\ quote\\\""));
    }
}
