//! `transitive-wallclock` — functions that *reach* a wall-clock read.
//!
//! The token-level `wallclock-in-hot-path` lint flags a direct
//! `Instant::now()` / `SystemTime::now()` call site. That is
//! necessary but not sufficient: a helper in one crate can read the
//! clock and a hot path in another crate can call it, and no single
//! file shows both halves. This pass seeds a reverse breadth-first
//! search at every direct reader outside the quarantine module
//! (`crates/tracekit/src/wall.rs`) and walks the caller graph; every
//! non-test function reached — other than the direct readers the
//! token lint already reports — gets a diagnostic carrying the call
//! chain down to the clock read.
//!
//! Functions in `tracekit::wall` neither seed nor propagate taint:
//! that module is the blessed boundary where wall time is allowed, so
//! calling *it* is fine — the contract is that nothing else touches
//! the clock.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::semantic::{render_chain, SemanticPass};
use crate::symbols::Workspace;

/// The one module allowed to read wall clocks (DESIGN.md §9).
const WALL_FILE: &str = "crates/tracekit/src/wall.rs";

pub struct TransitiveWallclock;

impl SemanticPass for TransitiveWallclock {
    fn lint(&self) -> &'static str {
        "transitive-wallclock"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        // Direct readers: `Instant::now(` / `SystemTime::now(` in a
        // non-test body outside the wall module. (Any bare `now(` with
        // a `::` qualifier counts only for these two types — the same
        // heuristic the token lint uses.)
        let mut seeds = Vec::new();
        for i in 0..ws.fns.len() {
            let f = &ws.fns[i];
            if f.in_test || ws.files[f.file].file.rel_path == WALL_FILE {
                continue;
            }
            if reads_wall_clock(ws, i) {
                seeds.push(i);
            }
        }
        if seeds.is_empty() {
            return;
        }

        let (reached, parent) = ws.closure(&seeds, &ws.callers, |n| {
            !ws.fns[n].in_test && ws.files[ws.fns[n].file].file.rel_path != WALL_FILE
        });

        for &i in &reached {
            if seeds.contains(&i) {
                continue; // the token lint already owns the direct site
            }
            let f = &ws.fns[i];
            out.push(Diagnostic {
                path: ws.files[f.file].file.rel_path.clone(),
                line: f.line,
                lint: self.lint().into(),
                message: format!(
                    "`{}` transitively reaches a wall-clock read outside tracekit::wall \
                     (call chain: {})",
                    f.qual(),
                    render_chain(ws, i, &parent)
                ),
            });
        }
    }
}

/// True when fn `i`'s body contains `Instant::now(` or
/// `SystemTime::now(`.
fn reads_wall_clock(ws: &Workspace, i: usize) -> bool {
    let Some((lo, hi)) = ws.fns[i].body else { return false };
    let file = &ws.files[ws.fns[i].file].file;
    (lo..=hi).any(|k| {
        file.sig_kind(k) == Some(TokKind::Ident)
            && (file.sig_text(k) == "Instant" || file.sig_text(k) == "SystemTime")
            && file.sig_matches(k + 1, &["::", "now", "("])
            && k + 3 <= hi + 1
    })
}
