//! `dead-registry-entry` — registered metrics nobody ever records.
//!
//! The trace/metric namespace is closed (DESIGN.md §9): every counter,
//! gauge, histogram, and stage is a variant of a `registry_enum!`
//! invocation in `crates/tracekit/src/metrics.rs`, and the token-level
//! `string-metric-label` lint keeps ad-hoc names out. The closed set
//! can still rot in the other direction: a variant stays registered
//! after its last recording site is refactored away, and dashboards
//! keep a forever-zero series that *looks* like a broken engine.
//!
//! This pass parses the variants out of each `registry_enum!` macro
//! body (the AST keeps macro-invocation token ranges exactly for this)
//! and scans every other engine source — plus the bench/detkit tooling
//! sources, since the profiler is a legitimate recording site — for a
//! qualified `Enum::Variant` reference outside test code. A variant
//! with no such reference is reported at its declaration line.
//!
//! References inside `metrics.rs` itself do not count: the generated
//! `ALL`/`name`/`kind` tables mention every variant by construction,
//! which is precisely why they cannot witness liveness.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::semantic::{find_file, SemanticPass};
use crate::symbols::Workspace;

/// Where the closed registries live.
const METRICS_FILE: &str = "crates/tracekit/src/metrics.rs";

pub struct DeadRegistryEntry;

impl SemanticPass for DeadRegistryEntry {
    fn lint(&self) -> &'static str {
        "dead-registry-entry"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(mi) = find_file(ws, METRICS_FILE) else { return };
        let variants = registry_variants(ws, mi);
        if variants.is_empty() {
            return;
        }

        for v in &variants {
            let mut live = false;
            'files: for (fi, wsf) in ws.files.iter().enumerate() {
                if fi == mi {
                    continue;
                }
                if scan_for_ref(&wsf.file, &v.enum_name, &v.variant) {
                    live = true;
                    break 'files;
                }
            }
            if !live {
                live = ws.aux.iter().any(|f| scan_for_ref(f, &v.enum_name, &v.variant));
            }
            if !live {
                out.push(Diagnostic {
                    path: METRICS_FILE.into(),
                    line: v.line,
                    lint: self.lint().into(),
                    message: format!(
                        "registry variant `{}::{}` (\"{}\") is never recorded outside tests \
                         — remove it or wire up its recording site",
                        v.enum_name, v.variant, v.label
                    ),
                });
            }
        }
    }
}

/// One `Variant => "label"` declaration.
struct Variant {
    enum_name: String,
    variant: String,
    label: String,
    line: u32,
}

/// Extracts every variant of every `registry_enum!` invocation in
/// workspace file `mi`.
fn registry_variants(ws: &Workspace, mi: usize) -> Vec<Variant> {
    let wsf = &ws.files[mi];
    let file = &wsf.file;
    let mut out = Vec::new();
    crate::ast::walk(&wsf.ast.items, &mut |item| {
        if item.kind != crate::ast::ItemKind::MacroCall || item.name != "registry_enum" {
            return;
        }
        let Some((lo, hi)) = item.body else { return };
        // Body shape: attributes/docs, `pub enum Name {`, then
        // `Variant => "label",` rows (docs are comments, not sig tokens).
        let mut k = lo;
        while k <= hi && file.sig_text(k) != "enum" {
            k += 1;
        }
        let enum_name = file.sig_text(k + 1).to_string();
        k += 2; // past `enum Name`
        while k <= hi {
            if file.sig_kind(k) == Some(TokKind::Ident)
                && file.sig_text(k + 1) == "=>"
                && file.sig_kind(k + 2) == Some(TokKind::Str)
            {
                out.push(Variant {
                    enum_name: enum_name.clone(),
                    variant: file.sig_text(k).to_string(),
                    label: file.sig_text(k + 2).trim_matches('"').to_string(),
                    line: file.sig_line(k),
                });
                k += 3;
            } else {
                k += 1;
            }
        }
    });
    out
}

/// True when `file` contains `Enum :: Variant` in non-test code.
fn scan_for_ref(file: &crate::source::SourceFile, enum_name: &str, variant: &str) -> bool {
    (0..file.sig.len()).any(|k| {
        !file.sig_in_test(k)
            && file.sig_text(k) == enum_name
            && file.sig_matches(k + 1, &["::", variant])
    })
}
