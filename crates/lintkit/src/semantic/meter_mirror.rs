//! `meter-mirror` — the ladder and planner answer paths must meter
//! the same resources.
//!
//! The cost-based planner is differential-tested against the legacy
//! degradation ladder: byte-identical answers, same downgrade records
//! (DESIGN.md §11). The per-query [`ResourceMeter`] is part of that
//! observable surface — scalebench and the observability suite read
//! it — but nothing used to force the two paths to *fill* it the same
//! way: a new retrieval stage metered on the planner path and
//! forgotten on the ladder path skews every A/B number silently while
//! the answer bytes still match.
//!
//! This pass finds the two answer roots in `crates/core/src/engine.rs`
//! (`answer_ladder`, `answer_planned`), takes each one's forward call
//! closure *restricted to the core crate* (tracekit's own meter
//! helpers — `merge`, `fields` — touch every field by construction
//! and would wash the signal out), collects the set of `ResourceMeter`
//! field names written (`<expr>.field += …` / `<expr>.field = …`)
//! anywhere in each closure, and reports the symmetric difference.
//! The field list itself is parsed from the `ResourceMeter` struct in
//! `crates/tracekit/src/meter.rs`, so adding a field automatically
//! extends the contract.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::semantic::{find_file, SemanticPass};
use crate::symbols::Workspace;

const ENGINE_FILE: &str = "crates/core/src/engine.rs";
const METER_FILE: &str = "crates/tracekit/src/meter.rs";
const ROOTS: [&str; 2] = ["answer_ladder", "answer_planned"];

pub struct MeterMirror;

impl SemanticPass for MeterMirror {
    fn lint(&self) -> &'static str {
        "meter-mirror"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let fields = meter_fields(ws);
        if fields.is_empty() {
            return;
        }
        let Some(ei) = find_file(ws, ENGINE_FILE) else { return };
        let roots: Vec<usize> = ROOTS
            .iter()
            .filter_map(|name| {
                (0..ws.fns.len()).find(|&i| ws.fns[i].file == ei && ws.fns[i].name == *name)
            })
            .collect();
        if roots.len() != 2 {
            return; // a root was renamed; the mirror contract has no anchor
        }

        let written: Vec<BTreeSet<String>> = roots
            .iter()
            .map(|&root| {
                let (closure, _) = ws.closure(&[root], &ws.callees, |n| {
                    !ws.fns[n].in_test
                        && ws.fns[n].module.first().map(String::as_str) == Some("core")
                });
                let mut set = BTreeSet::new();
                for &i in &closure {
                    collect_writes(ws, i, &fields, &mut set);
                }
                set
            })
            .collect();

        for (a, b) in [(0, 1), (1, 0)] {
            for field in written[a].difference(&written[b]) {
                let lagging = &ws.fns[roots[b]];
                out.push(Diagnostic {
                    path: ENGINE_FILE.into(),
                    line: lagging.line,
                    lint: self.lint().into(),
                    message: format!(
                        "`{}` never writes ResourceMeter field `{}` but its mirror path \
                         `{}` does — the two answer paths must meter the same resources",
                        lagging.qual(),
                        field,
                        ws.fns[roots[a]].qual(),
                    ),
                });
            }
        }
    }
}

/// Field names of the `ResourceMeter` struct, parsed from its AST.
fn meter_fields(ws: &Workspace) -> Vec<String> {
    let Some(mi) = find_file(ws, METER_FILE) else { return Vec::new() };
    let wsf = &ws.files[mi];
    let mut fields = Vec::new();
    crate::ast::walk(&wsf.ast.items, &mut |item| {
        if item.kind != crate::ast::ItemKind::Struct || item.name != "ResourceMeter" {
            return;
        }
        let Some((lo, hi)) = item.body else { return };
        for k in lo..=hi {
            if wsf.file.sig_kind(k) == Some(TokKind::Ident)
                && wsf.file.sig_text(k + 1) == ":"
                && wsf.file.sig_text(k.wrapping_sub(1)) != "#"
            {
                fields.push(wsf.file.sig_text(k).to_string());
            }
        }
    });
    fields
}

/// Adds to `set` every meter field that fn `i` writes: `. field =` or
/// `. field +=` (the lexer splits `+=` into `+` `=`), excluding `==`
/// comparisons.
fn collect_writes(ws: &Workspace, i: usize, fields: &[String], set: &mut BTreeSet<String>) {
    let Some((lo, hi)) = ws.fns[i].body else { return };
    let file = &ws.files[ws.fns[i].file].file;
    for k in lo..hi {
        if file.sig_text(k) != "." {
            continue;
        }
        let name = file.sig_text(k + 1);
        if !fields.iter().any(|f| f == name) {
            continue;
        }
        let op = file.sig_text(k + 2);
        let is_write = match op {
            "=" => file.sig_text(k + 3) != "=", // `==` is a comparison
            "+" | "-" | "*" => file.sig_text(k + 3) == "=",
            _ => false,
        };
        if is_write {
            set.insert(name.to_string());
        }
    }
}
