//! Workspace-level semantic passes over the symbol graph.
//!
//! Token passes (`crate::passes`) see one file at a time; these passes
//! see the whole workspace at once — the module tree, the function
//! table, and the call graph — so they can enforce contracts that no
//! single file can witness: a wall-clock read reached through three
//! crates of helpers, a WAL write path with no fault site anywhere
//! above it, a metric registered but never incremented, a planner
//! answer path that fills a meter field the ladder path forgot.
//!
//! Like the token passes they are heuristic (name-based call
//! resolution, no types) and accept line-level suppression; unlike
//! them, a single finding can implicate several files, so each
//! diagnostic names the evidence chain in its message.

pub mod dead_registry;
pub mod io_sites;
pub mod meter_mirror;
pub mod wallclock_reach;

use crate::diag::Diagnostic;
use crate::symbols::Workspace;

/// A workspace-level pass.
pub trait SemanticPass {
    /// The lint name this pass reports under (must appear in
    /// [`crate::LINTS`]).
    fn lint(&self) -> &'static str;

    /// Emits diagnostics for the whole workspace into `out`.
    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// The closed semantic-pass registry (all four run on every invocation;
/// none is pedantic-gated — each enforces a hard contract).
pub fn registry() -> Vec<Box<dyn SemanticPass>> {
    vec![
        Box::new(wallclock_reach::TransitiveWallclock),
        Box::new(io_sites::UncoveredIoSite),
        Box::new(dead_registry::DeadRegistryEntry),
        Box::new(meter_mirror::MeterMirror),
    ]
}

/// Index of the workspace file at `rel_path`, if present.
pub(crate) fn find_file(ws: &Workspace, rel_path: &str) -> Option<usize> {
    ws.files.iter().position(|f| f.file.rel_path == rel_path)
}

/// Renders a caller chain (`reported -> … -> seed`) as `a -> b -> c`
/// of qualified names, for evidence messages. `parent` is the BFS
/// parent map from [`Workspace::closure`].
pub(crate) fn render_chain(
    ws: &Workspace,
    mut at: usize,
    parent: &std::collections::BTreeMap<usize, usize>,
) -> String {
    let mut names = vec![ws.fns[at].qual()];
    while let Some(&next) = parent.get(&at) {
        names.push(ws.fns[next].qual());
        at = next;
        if names.len() > 8 {
            names.push("…".into());
            break;
        }
    }
    names.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_registry_is_closed_and_named() {
        let passes = registry();
        assert_eq!(passes.len(), 4);
        for pass in passes {
            assert!(
                crate::LINTS.iter().any(|(name, _)| *name == pass.lint()),
                "semantic pass `{}` missing from LINTS registry",
                pass.lint()
            );
        }
    }
}
