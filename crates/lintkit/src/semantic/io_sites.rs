//! `uncovered-io-site` — raw storage I/O with no faultkit site above it.
//!
//! The durability story (DESIGN.md §12–13) rests on the crash matrix:
//! every page write, WAL append, and flush can be made to fail or tear
//! through the closed 11-site faultkit registry, and the recovery
//! suite proves the engine survives. That only holds if every raw I/O
//! call is *dominated by* a `faults.check(Site::…, …)` somewhere on
//! its call path — an I/O site the injector cannot reach is a crash
//! window the matrix never exercises.
//!
//! This pass works on the storekit crate (the only engine crate that
//! touches files at query/ingest time): it seeds the forward call
//! closure at every *storekit* function whose body performs a
//! `check(Site::…)` and then flags any non-test storekit function
//! *outside* that closure whose body calls a raw I/O primitive
//! (`write_all`, `sync_all`, `sync_data`, `set_len`). Both seeds and
//! closure stay inside storekit on purpose: core's parse/traverse
//! sites sit far above the storage layer and would "cover" every
//! byte ever written — the injector must sit near the syscall to
//! model its failure. Within the layer the pass is over-approximate:
//! a storage-site check anywhere above the I/O counts, because the
//! injector fires before the syscall on that path.

use crate::diag::Diagnostic;
use crate::semantic::SemanticPass;
use crate::symbols::Workspace;

/// Raw I/O primitives that must sit below a fault site.
const RAW_IO: &[&str] = &["write_all", "sync_all", "sync_data", "set_len"];

pub struct UncoveredIoSite;

impl SemanticPass for UncoveredIoSite {
    fn lint(&self) -> &'static str {
        "uncovered-io-site"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        // Seeds: storekit functions that consult the fault registry
        // themselves. `self.faults.check(Site::WalAppend, …)` lexes
        // with the consecutive significant tokens `check ( Site ::`.
        let in_storekit =
            |i: usize| ws.fns[i].module.first().map(String::as_str) == Some("storekit");
        let seeds: Vec<usize> = (0..ws.fns.len())
            .filter(|&i| in_storekit(i) && ws.body_matches(i, &["check", "(", "Site", "::"]))
            .collect();
        // Sure edges only: a heuristic name-match edge (`File::open`
        // resolving to `Pager::open`) must never count as coverage.
        let (covered, _) = ws.closure(&seeds, &ws.callees_sure, in_storekit);

        for i in 0..ws.fns.len() {
            let f = &ws.fns[i];
            if f.in_test || f.module.first().map(String::as_str) != Some("storekit") {
                continue;
            }
            if covered.contains(&i) {
                continue;
            }
            let file = &ws.files[f.file].file;
            for &method in RAW_IO {
                if let Some(k) = ws.find_in_body(i, &[".", method, "("]) {
                    out.push(Diagnostic {
                        path: file.rel_path.clone(),
                        line: file.sig_line(k + 1),
                        lint: self.lint().into(),
                        message: format!(
                            "raw `{}` in `{}` is not dominated by any faultkit site check \
                             (closed 11-site registry; the crash matrix cannot reach this I/O)",
                            method,
                            f.qual()
                        ),
                    });
                }
            }
        }
    }
}
