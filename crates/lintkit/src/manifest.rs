//! `non-path-dependency` — the hermetic-build manifest pass.
//!
//! Every dependency in every `Cargo.toml` (including the root
//! `[workspace.dependencies]` table, so `workspace = true` inheritance is
//! transitively path-only) must either declare `path = …` or inherit via
//! `workspace = true`. Version-only, git, and registry dependencies all
//! fail: the tier-1 gate builds with `CARGO_NET_OFFLINE=true` against an
//! empty registry, so they could never resolve anyway — this lint just
//! says so before cargo does, with a line number.
//!
//! Improvements over the awk it replaces: multi-line inline tables
//! (`foo = {` … `}`) are joined before checking, and dotted sub-table
//! sections (`[dependencies.foo]`) are audited too.
//!
//! Suppression uses the same grammar as Rust sources, in a TOML comment:
//! `# udlint: allow(non-path-dependency) -- <reason>`.

use crate::diag::Diagnostic;
use crate::source::Suppression;

/// Whether a `[section]` header names a dependency table.
fn is_dep_table(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// Whether a header is a *single-dependency* sub-table like
/// `[dependencies.foo]`.
fn dep_subtable(section: &str) -> Option<&str> {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(rest) = section.strip_prefix(prefix) {
            return Some(rest);
        }
    }
    None
}

fn entry_is_path_or_workspace(entry: &str) -> bool {
    let squashed: String = entry.split_whitespace().collect::<Vec<_>>().join(" ");
    squashed.contains("path =")
        || squashed.contains("path=")
        || squashed.contains("workspace = true")
        || squashed.contains("workspace=true")
}

/// Lints one manifest. Returns diagnostics plus any suppressions parsed
/// from its TOML comments (target = the comment's own line or, for a
/// standalone comment line, the following line).
pub fn lint_manifest(rel_path: &str, src: &str) -> (Vec<Diagnostic>, Vec<Suppression>) {
    let mut out = Vec::new();
    let mut suppressions = Vec::new();
    let mut section = String::new();
    // (start line, name, accumulated text, brace balance) of an entry.
    let mut pending: Option<(u32, String, String, i32)> = None;
    let mut subtable: Option<(u32, String, bool)> = None; // line, name, saw path

    let close_subtable = |sub: &mut Option<(u32, String, bool)>, out: &mut Vec<Diagnostic>| {
        if let Some((line, name, ok)) = sub.take() {
            if !ok {
                out.push(Diagnostic {
                    path: rel_path.to_string(),
                    line,
                    lint: "non-path-dependency".into(),
                    message: format!(
                        "dependency table `{name}` has no `path =` key (hermetic build \
                             policy: path-only dependencies)"
                    ),
                });
            }
        }
    };

    for (i, raw) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        // TOML comments can carry suppressions.
        if let Some(hash) = raw.find('#') {
            let comment = &raw[hash..];
            if let Some(s) = parse_toml_allow(comment, lineno, raw[..hash].trim().is_empty()) {
                suppressions.push(s);
            }
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some((_, _, text, balance)) = pending.as_mut() {
            text.push(' ');
            text.push_str(line);
            *balance += brace_delta(line);
            if *balance <= 0 {
                let (l, name, text, _) = pending.take().unwrap_or_default();
                if !entry_is_path_or_workspace(&text) {
                    push_entry_diag(&mut out, rel_path, l, &name);
                }
            }
            continue;
        }
        if line.starts_with('[') {
            close_subtable(&mut subtable, &mut out);
            section = line.trim_matches(['[', ']']).trim().to_string();
            if let Some(name) = dep_subtable(&section) {
                subtable = Some((lineno, name.to_string(), false));
            }
            continue;
        }
        if subtable.is_some() {
            if line.starts_with("path") {
                if let Some(s) = subtable.as_mut() {
                    s.2 = true;
                }
            }
            continue;
        }
        if !is_dep_table(&section) {
            continue;
        }
        let Some((name, rest)) = line.split_once('=') else { continue };
        let name = name.trim().to_string();
        let balance = brace_delta(rest);
        if balance > 0 {
            pending = Some((lineno, name, rest.to_string(), balance));
        } else if !entry_is_path_or_workspace(rest) {
            push_entry_diag(&mut out, rel_path, lineno, &name);
        }
    }
    close_subtable(&mut subtable, &mut out);
    if let Some((l, name, text, _)) = pending {
        if !entry_is_path_or_workspace(&text) {
            push_entry_diag(&mut out, rel_path, l, &name);
        }
    }
    (out, suppressions)
}

fn push_entry_diag(out: &mut Vec<Diagnostic>, rel_path: &str, line: u32, name: &str) {
    out.push(Diagnostic {
        path: rel_path.to_string(),
        line,
        lint: "non-path-dependency".into(),
        message: format!(
            "dependency `{name}` is not a path dependency (hermetic build policy: declare \
             `path = …` or inherit `workspace = true`)"
        ),
    });
}

fn brace_delta(s: &str) -> i32 {
    s.chars()
        .map(|c| match c {
            '{' => 1,
            '}' => -1,
            _ => 0,
        })
        .sum()
}

/// Parses `# udlint: allow(lint) -- reason`; standalone comments cover
/// the next line, trailing comments their own line. Malformed markers are
/// simply ignored here (the Rust-side grammar is the canonical one).
fn parse_toml_allow(comment: &str, line: u32, standalone: bool) -> Option<Suppression> {
    let pos = comment.find("udlint:")?;
    let rest = comment[pos + 7..].trim_start().strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim_start().strip_prefix("--")?.trim().to_string();
    if lint.is_empty() || reason.is_empty() {
        return None;
    }
    Some(Suppression {
        target_line: if standalone { line + 1 } else { line },
        comment_line: line,
        lint,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_manifest("Cargo.toml", src).0
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let src = "[dependencies]\n\
                   detkit = { path = \"../detkit\" }\n\
                   unisem-core = { workspace = true }\n\
                   [dev-dependencies]\n\
                   parkit = { path = \"../parkit\", features = [\"x\"] }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn version_git_and_registry_deps_fail() {
        let src = "[dependencies]\n\
                   serde = \"1.0\"\n\
                   rand = { version = \"0.8\" }\n\
                   left-pad = { git = \"https://example.org/x\" }\n";
        let d = lint(src);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|d| d.lint == "non-path-dependency"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn multiline_inline_table_is_joined() {
        let src = "[dependencies]\nbig = {\n  version = \"1\"\n}\nok = { path = \"x\" }\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn dotted_subtable_requires_path() {
        let src = "[dependencies.foo]\nversion = \"1\"\n\n[dependencies.bar]\npath = \"../bar\"\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`foo`"));
    }

    #[test]
    fn workspace_dependencies_table_is_audited() {
        let src = "[workspace.dependencies]\nserde = \"1\"\n";
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn non_dep_sections_ignored() {
        let src = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n[features]\ndefault = []\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn toml_suppression_parses() {
        let src = "[dependencies]\n\
                   serde = \"1\" # udlint: allow(non-path-dependency) -- vendored offline\n";
        let (d, s) = lint_manifest("Cargo.toml", src);
        assert_eq!(d.len(), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].target_line, 2);
        assert_eq!(s[0].lint, "non-path-dependency");
    }
}
