//! Property-based tests: graph invariants and algorithm laws (detkit
//! harness).

use detkit::prop::{usizes, vec_of, zip, Gen};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use unisem_hetgraph::algo::{
    bfs_within, connected_components, pagerank, personalized_pagerank, shortest_path,
};
use unisem_hetgraph::{EdgeKind, HetGraph, NodeId};
use unisem_slm::EntityKind;

/// Builds a graph from an edge list over `n` entity nodes.
fn graph_from(n: usize, edges: &[(usize, usize)]) -> HetGraph {
    let mut g = HetGraph::new();
    let ids: Vec<NodeId> =
        (0..n).map(|i| g.add_entity(&format!("n{i}"), EntityKind::Other)).collect();
    for &(a, b) in edges {
        let (a, b) = (ids[a % n], ids[b % n]);
        if a != b {
            g.add_edge(a, b, EdgeKind::Mentions);
        }
    }
    g
}

fn arb_graph() -> Gen<HetGraph> {
    usizes(2, 19).flat_map(|&n| {
        vec_of(&zip(&usizes(0, n - 1), &usizes(0, n - 1)), 0, 40)
            .map(move |edges| graph_from(n, edges))
    })
}

// Handshake lemma: Σ degree = 2 · |E|.
prop_check!(handshake, arb_graph(), |g| {
    let total: usize = (0..g.num_nodes()).map(|i| g.degree(NodeId(i as u32))).sum();
    prop_assert_eq!(total, 2 * g.num_edges());
    Ok(())
});

// PageRank is a probability distribution and non-negative.
prop_check!(pagerank_distribution, arb_graph(), |g| {
    let pr = pagerank(g, 0.85, 40);
    prop_assert_eq!(pr.len(), g.num_nodes());
    prop_assert!(pr.iter().all(|&p| p >= 0.0));
    let sum: f64 = pr.iter().sum();
    prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
    Ok(())
});

// Personalized PageRank gives zero mass to nodes unreachable from the
// seed's component.
prop_check!(ppr_confined_to_component, arb_graph(), |g| {
    let seed = NodeId(0);
    let ppr = personalized_pagerank(g, &[seed], 0.85, 40);
    let (comp, _) = connected_components(g);
    for i in 0..g.num_nodes() {
        if comp[i] != comp[0] {
            prop_assert_eq!(ppr[i], 0.0, "node {} outside seed component", i);
        }
    }
    Ok(())
});

// BFS distance agrees with shortest-path length.
prop_check!(bfs_matches_shortest_path, arb_graph(), |g| {
    let reached = bfs_within(g, NodeId(0), usize::MAX);
    for &(node, d) in reached.iter().take(10) {
        let p = shortest_path(g, NodeId(0), node).expect("reached implies path");
        prop_assert_eq!(p.len() - 1, d);
    }
    Ok(())
});

// Components partition the nodes: same component ⇔ path exists
// (checked on a sample of pairs).
prop_check!(components_consistent_with_paths, arb_graph(), |g| {
    let (comp, count) = connected_components(g);
    prop_assert!(count >= 1);
    let n = g.num_nodes().min(6);
    for a in 0..n {
        for b in 0..n {
            let connected = shortest_path(g, NodeId(a as u32), NodeId(b as u32)).is_some();
            prop_assert_eq!(connected, comp[a] == comp[b]);
        }
    }
    Ok(())
});

// Hop-bounded BFS frontiers are monotone in the bound.
prop_check!(bfs_monotone_in_hops, zip(&arb_graph(), &usizes(0, 4)), |t| {
    let (g, h) = t;
    let small = bfs_within(g, NodeId(0), *h).len();
    let large = bfs_within(g, NodeId(0), h + 1).len();
    prop_assert!(small <= large);
    Ok(())
});
