//! The heterogeneous graph data structure.
//!
//! Arena-style storage: nodes and edges live in `Vec`s addressed by dense
//! ids; adjacency lists store `(neighbor, edge)` pairs in both directions
//! (the graph is logically undirected — traversal relevance, not causality,
//! is what retrieval needs).

use std::collections::HashMap;
use std::fmt;

use unisem_slm::EntityKind;

/// Dense node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Dense edge identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub u32);

/// What a node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A text chunk from the document store.
    Chunk {
        /// Chunk id in the docstore.
        chunk_id: usize,
        /// Owning document id.
        doc_id: usize,
    },
    /// A named entity (deduplicated by canonical name + kind).
    Entity {
        /// Canonical (lowercased) name.
        name: String,
        /// Entity class.
        kind: EntityKind,
    },
    /// A row of a relational table or flattened JSON collection.
    Record {
        /// Source table/collection name.
        table: String,
        /// Row index within the table.
        row: usize,
    },
    /// A whole relational table / collection.
    Table {
        /// Table name.
        name: String,
    },
}

impl NodeKind {
    /// True for chunk nodes.
    pub fn is_chunk(&self) -> bool {
        matches!(self, NodeKind::Chunk { .. })
    }

    /// True for entity nodes.
    pub fn is_entity(&self) -> bool {
        matches!(self, NodeKind::Entity { .. })
    }

    /// True for record nodes.
    pub fn is_record(&self) -> bool {
        matches!(self, NodeKind::Record { .. })
    }
}

/// A node with its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node id.
    pub id: NodeId,
    /// What the node represents.
    pub kind: NodeKind,
    /// Display label (chunk preview, entity surface form, "table[row]").
    pub label: String,
}

/// Edge semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeKind {
    /// A chunk (or record) mentions an entity.
    Mentions,
    /// An inferred relation between two entities, labeled with the cue verb
    /// ("purchased", "prescribed", …).
    RelatesTo(String),
    /// Temporal association (entity/chunk ↔ date or quarter entity).
    Temporal,
    /// A record belongs to its table.
    BelongsTo,
    /// A record has an attribute equal to an entity's value
    /// ("sales[3] --has_attr--> product alpha").
    HasAttribute(String),
    /// Two chunks are adjacent in the same document.
    NextChunk,
}

impl EdgeKind {
    /// Traversal weight: lower = stronger connection (used as edge length
    /// in weighted traversal). Mentions and attributes are the strongest
    /// signals; adjacency is weakest.
    pub fn traversal_cost(&self) -> f64 {
        match self {
            EdgeKind::Mentions => 1.0,
            EdgeKind::HasAttribute(_) => 1.0,
            EdgeKind::RelatesTo(_) => 1.2,
            EdgeKind::BelongsTo => 1.5,
            EdgeKind::Temporal => 1.5,
            EdgeKind::NextChunk => 2.0,
        }
    }

    /// Short label for rendering.
    pub fn label(&self) -> String {
        match self {
            EdgeKind::Mentions => "mentions".to_string(),
            EdgeKind::RelatesTo(v) => format!("relates_to:{v}"),
            EdgeKind::Temporal => "temporal".to_string(),
            EdgeKind::BelongsTo => "belongs_to".to_string(),
            EdgeKind::HasAttribute(a) => format!("has_attr:{a}"),
            EdgeKind::NextChunk => "next_chunk".to_string(),
        }
    }
}

/// An edge between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Edge id.
    pub id: EdgeId,
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Edge semantics.
    pub kind: EdgeKind,
}

/// The heterogeneous graph.
#[derive(Debug, Clone, Default)]
pub struct HetGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// adjacency[node] = (neighbor, edge) pairs.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    /// (canonical name, kind) → entity node.
    entity_index: HashMap<(String, EntityKind), NodeId>,
    /// canonical name → smallest entity node id with that name (fast path
    /// for kind-agnostic lookup, which retrieval does per query mention).
    entity_by_name_index: HashMap<String, NodeId>,
    /// chunk_id → node.
    chunk_index: HashMap<usize, NodeId>,
    /// (table, row) → node.
    record_index: HashMap<(String, usize), NodeId>,
    /// table name → node.
    table_index: HashMap<String, NodeId>,
    /// Dedup: sorted endpoint pair + kind label → edge, preventing parallel
    /// duplicate edges from repeated mentions.
    edge_dedup: HashMap<(NodeId, NodeId, String), EdgeId>,
}

impl HetGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges in id order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Edge accessor.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0 as usize]
    }

    /// Neighbors of a node with connecting edges.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[id.0 as usize]
    }

    /// Degree of a node.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adjacency[id.0 as usize].len()
    }

    /// Maximum node degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Power-of-two degree histogram: `(inclusive upper bound, node count)`
    /// for bounds 1, 2, 4, …, 1024, plus one overflow bucket reported with
    /// bound `usize::MAX`. A pure function of the adjacency, so the planner
    /// statistics built from it are deterministic at any thread count.
    pub fn degree_histogram(&self) -> Vec<(usize, usize)> {
        const BOUNDS: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        let mut counts = [0usize; BOUNDS.len() + 1];
        for adj in &self.adjacency {
            let d = adj.len();
            let bucket = BOUNDS.iter().position(|&b| d <= b).unwrap_or(BOUNDS.len());
            counts[bucket] += 1;
        }
        BOUNDS.iter().copied().chain(std::iter::once(usize::MAX)).zip(counts).collect()
    }

    fn push_node(&mut self, kind: NodeKind, label: String) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, kind, label });
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds (or returns the existing) chunk node.
    pub fn add_chunk(&mut self, chunk_id: usize, doc_id: usize, preview: &str) -> NodeId {
        if let Some(&id) = self.chunk_index.get(&chunk_id) {
            return id;
        }
        let label: String = preview.chars().take(60).collect();
        let id = self.push_node(NodeKind::Chunk { chunk_id, doc_id }, label);
        self.chunk_index.insert(chunk_id, id);
        id
    }

    /// Adds (or returns the existing) entity node; names are canonicalized
    /// to lowercase, whitespace-collapsed form.
    pub fn add_entity(&mut self, name: &str, kind: EntityKind) -> NodeId {
        let canon = unisem_slm::ner::canonical_phrase(name);
        if let Some(&id) = self.entity_index.get(&(canon.clone(), kind)) {
            return id;
        }
        let id = self.push_node(NodeKind::Entity { name: canon.clone(), kind }, canon.clone());
        self.entity_index.insert((canon.clone(), kind), id);
        // Keep the smallest id for deterministic kind-agnostic lookup.
        self.entity_by_name_index
            .entry(canon)
            .and_modify(|existing| {
                if id < *existing {
                    *existing = id;
                }
            })
            .or_insert(id);
        id
    }

    /// Adds (or returns the existing) record node.
    pub fn add_record(&mut self, table: &str, row: usize) -> NodeId {
        let key = (table.to_string(), row);
        if let Some(&id) = self.record_index.get(&key) {
            return id;
        }
        let id = self.push_node(
            NodeKind::Record { table: table.to_string(), row },
            format!("{table}[{row}]"),
        );
        self.record_index.insert(key, id);
        id
    }

    /// Adds (or returns the existing) table node.
    pub fn add_table(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.table_index.get(name) {
            return id;
        }
        let id = self.push_node(NodeKind::Table { name: name.to_string() }, name.to_string());
        self.table_index.insert(name.to_string(), id);
        id
    }

    /// Adds an undirected edge (idempotent per endpoint-pair + kind).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, kind: EdgeKind) -> EdgeId {
        assert!(a != b, "self-loops are not allowed");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let dedup_key = (lo, hi, kind.label());
        if let Some(&e) = self.edge_dedup.get(&dedup_key) {
            return e;
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { id, a, b, kind });
        self.adjacency[a.0 as usize].push((b, id));
        self.adjacency[b.0 as usize].push((a, id));
        self.edge_dedup.insert(dedup_key, id);
        id
    }

    /// Reassembles a graph from snapshot parts: nodes and edges in id
    /// order, exactly as [`Self::nodes`] / [`Self::edges`] returned them.
    /// Adjacency and every lookup index are rebuilt; entity names are
    /// trusted to be canonical already (they were canonicalized when the
    /// persisted graph was first built) and are NOT re-canonicalized, so
    /// the reassembled graph is structurally identical byte for byte.
    pub fn from_parts(nodes: Vec<Node>, edges: Vec<Edge>) -> Result<Self, String> {
        let mut g = HetGraph { adjacency: vec![Vec::new(); nodes.len()], ..HetGraph::default() };
        for (i, node) in nodes.iter().enumerate() {
            if node.id.0 as usize != i {
                return Err(format!("node {} stored at position {i}", node.id.0));
            }
            match &node.kind {
                NodeKind::Chunk { chunk_id, .. } => {
                    g.chunk_index.insert(*chunk_id, node.id);
                }
                NodeKind::Entity { name, kind } => {
                    g.entity_index.insert((name.clone(), *kind), node.id);
                    g.entity_by_name_index.entry(name.clone()).or_insert(node.id);
                }
                NodeKind::Record { table, row } => {
                    g.record_index.insert((table.clone(), *row), node.id);
                }
                NodeKind::Table { name } => {
                    g.table_index.insert(name.clone(), node.id);
                }
            }
        }
        g.nodes = nodes;
        for (i, edge) in edges.iter().enumerate() {
            if edge.id.0 as usize != i {
                return Err(format!("edge {} stored at position {i}", edge.id.0));
            }
            let (a, b) = (edge.a.0 as usize, edge.b.0 as usize);
            if a >= g.nodes.len() || b >= g.nodes.len() {
                return Err(format!("edge {i} references missing node"));
            }
            g.adjacency[a].push((edge.b, edge.id));
            g.adjacency[b].push((edge.a, edge.id));
            let (lo, hi) = if edge.a <= edge.b { (edge.a, edge.b) } else { (edge.b, edge.a) };
            g.edge_dedup.insert((lo, hi, edge.kind.label()), edge.id);
        }
        g.edges = edges;
        Ok(g)
    }

    /// Looks up an entity node by canonical name (any kind); when several
    /// kinds share the name, the smallest node id wins (deterministic).
    pub fn entity_by_name(&self, name: &str) -> Option<NodeId> {
        let canon = unisem_slm::ner::canonical_phrase(name);
        self.entity_by_name_index.get(&canon).copied()
    }

    /// Looks up an entity node by canonical name and kind.
    pub fn entity_by_name_kind(&self, name: &str, kind: EntityKind) -> Option<NodeId> {
        let canon = unisem_slm::ner::canonical_phrase(name);
        self.entity_index.get(&(canon, kind)).copied()
    }

    /// All entity nodes.
    pub fn entities(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(|n| n.kind.is_entity())
    }

    /// Looks up a chunk node by docstore chunk id.
    pub fn chunk_node(&self, chunk_id: usize) -> Option<NodeId> {
        self.chunk_index.get(&chunk_id).copied()
    }

    /// Looks up a record node.
    pub fn record_node(&self, table: &str, row: usize) -> Option<NodeId> {
        self.record_index.get(&(table.to_string(), row)).copied()
    }

    /// Approximate resident bytes (nodes + edges + adjacency + indexes).
    pub fn approx_bytes(&self) -> usize {
        let node_bytes: usize =
            self.nodes.iter().map(|n| std::mem::size_of::<Node>() + n.label.len()).sum();
        let edge_bytes = self.edges.len() * std::mem::size_of::<Edge>();
        let adj_bytes: usize =
            self.adjacency.iter().map(|a| a.len() * std::mem::size_of::<(NodeId, EdgeId)>()).sum();
        let index_bytes = self.entity_index.len() * 48
            + self.chunk_index.len() * 24
            + self.record_index.len() * 48;
        node_bytes + edge_bytes + adj_bytes + index_bytes
    }
}

impl fmt::Display for HetGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HetGraph({} nodes, {} edges, {} entities)",
            self.num_nodes(),
            self.num_edges(),
            self.entity_index.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_nodes_dedup() {
        let mut g = HetGraph::new();
        let a = g.add_entity("Drug A", EntityKind::Drug);
        let b = g.add_entity("drug  a", EntityKind::Drug);
        assert_eq!(a, b);
        assert_eq!(g.num_nodes(), 1);
        let c = g.add_entity("drug a", EntityKind::Product);
        assert_ne!(a, c, "different kinds are distinct nodes");
    }

    #[test]
    fn chunk_and_record_dedup() {
        let mut g = HetGraph::new();
        let c1 = g.add_chunk(7, 0, "preview text");
        let c2 = g.add_chunk(7, 0, "different preview");
        assert_eq!(c1, c2);
        let r1 = g.add_record("sales", 3);
        let r2 = g.add_record("sales", 3);
        assert_eq!(r1, r2);
        assert_ne!(g.add_record("sales", 4), r1);
    }

    #[test]
    fn edges_are_undirected_and_deduped() {
        let mut g = HetGraph::new();
        let a = g.add_entity("x", EntityKind::Product);
        let b = g.add_entity("y", EntityKind::Product);
        let e1 = g.add_edge(a, b, EdgeKind::Mentions);
        let e2 = g.add_edge(b, a, EdgeKind::Mentions);
        assert_eq!(e1, e2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 1);
        // Different kind between same endpoints is a separate edge.
        let e3 = g.add_edge(a, b, EdgeKind::Temporal);
        assert_ne!(e1, e3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = HetGraph::new();
        let a = g.add_entity("x", EntityKind::Product);
        g.add_edge(a, a, EdgeKind::Mentions);
    }

    #[test]
    fn lookups() {
        let mut g = HetGraph::new();
        let a = g.add_entity("Product Alpha", EntityKind::Product);
        assert_eq!(g.entity_by_name("product alpha"), Some(a));
        assert_eq!(g.entity_by_name_kind("Product Alpha", EntityKind::Product), Some(a));
        assert_eq!(g.entity_by_name_kind("Product Alpha", EntityKind::Drug), None);
        assert_eq!(g.entity_by_name("missing"), None);
        let c = g.add_chunk(0, 0, "text");
        assert_eq!(g.chunk_node(0), Some(c));
        let r = g.add_record("t", 1);
        assert_eq!(g.record_node("t", 1), Some(r));
        assert_eq!(g.record_node("t", 2), None);
    }

    #[test]
    fn neighbors_list_both_sides() {
        let mut g = HetGraph::new();
        let c = g.add_chunk(0, 0, "chunk");
        let e = g.add_entity("x", EntityKind::Product);
        g.add_edge(c, e, EdgeKind::Mentions);
        assert_eq!(g.neighbors(c)[0].0, e);
        assert_eq!(g.neighbors(e)[0].0, c);
    }

    #[test]
    fn traversal_costs_ordered() {
        assert!(EdgeKind::Mentions.traversal_cost() < EdgeKind::NextChunk.traversal_cost());
        assert!(
            EdgeKind::RelatesTo("bought".into()).traversal_cost()
                < EdgeKind::Temporal.traversal_cost()
        );
    }

    #[test]
    fn labels_render() {
        assert_eq!(EdgeKind::Mentions.label(), "mentions");
        assert_eq!(EdgeKind::RelatesTo("bought".into()).label(), "relates_to:bought");
        assert_eq!(EdgeKind::HasAttribute("price".into()).label(), "has_attr:price");
    }

    #[test]
    fn entities_iterator_and_display() {
        let mut g = HetGraph::new();
        g.add_entity("a", EntityKind::Product);
        g.add_chunk(0, 0, "x");
        assert_eq!(g.entities().count(), 1);
        assert!(g.to_string().contains("2 nodes"));
    }

    #[test]
    fn approx_bytes_grows() {
        let mut g = HetGraph::new();
        let b0 = g.approx_bytes();
        let a = g.add_entity("some entity", EntityKind::Product);
        let b = g.add_entity("other entity", EntityKind::Product);
        g.add_edge(a, b, EdgeKind::Mentions);
        assert!(g.approx_bytes() > b0);
    }
}
