//! Topology algorithms over the heterogeneous graph.
//!
//! These implement the "graph properties, including centrality and
//! connectivity" that §III.B uses "to efficiently prioritize nodes and edges
//! that are most relevant to a given query".

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};

use detkit::Rng;
use parkit::Pool;

use crate::graph::{HetGraph, NodeId};

/// Fixed chunk size for parallel node sweeps. A constant (never derived
/// from the thread count) so chunk boundaries — and the association order
/// of floating-point partial sums — are identical at every
/// `UNISEM_THREADS` setting (parkit determinism contract, DESIGN.md §6).
const NODE_CHUNK: usize = 256;

/// Breadth-first traversal up to `max_hops`, returning each reached node
/// with its hop distance (the start node has distance 0).
pub fn bfs_within(graph: &HetGraph, start: NodeId, max_hops: usize) -> Vec<(NodeId, usize)> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back((start, 0usize));
    while let Some((node, d)) = queue.pop_front() {
        out.push((node, d));
        if d == max_hops {
            continue;
        }
        for &(next, _) in graph.neighbors(node) {
            if seen.insert(next) {
                queue.push_back((next, d + 1));
            }
        }
    }
    out
}

/// Multi-source BFS: hop distance to the nearest of `sources` for every
/// reachable node.
pub fn multi_source_hops(graph: &HetGraph, sources: &[NodeId]) -> BTreeMap<NodeId, usize> {
    let mut dist = BTreeMap::new();
    let mut queue = VecDeque::new();
    for &s in sources {
        if !dist.contains_key(&s) {
            dist.insert(s, 0);
            queue.push_back(s);
        }
    }
    while let Some(node) = queue.pop_front() {
        let d = dist[&node];
        for &(next, _) in graph.neighbors(node) {
            if !dist.contains_key(&next) {
                dist.insert(next, d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost (reverse), ties by node id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Weighted single-source shortest distances using edge traversal costs
/// (see [`crate::graph::EdgeKind::traversal_cost`]), cut off at `max_cost`.
pub fn dijkstra_within(graph: &HetGraph, start: NodeId, max_cost: f64) -> BTreeMap<NodeId, f64> {
    let mut dist: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(start, 0.0);
    heap.push(HeapItem { cost: 0.0, node: start });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > *dist.get(&node).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &(next, edge) in graph.neighbors(node) {
            let c = cost + graph.edge(edge).kind.traversal_cost();
            if c <= max_cost && c < *dist.get(&next).unwrap_or(&f64::INFINITY) {
                dist.insert(next, c);
                heap.push(HeapItem { cost: c, node: next });
            }
        }
    }
    dist
}

/// Unweighted shortest path between two nodes (inclusive of endpoints), or
/// `None` when disconnected.
pub fn shortest_path(graph: &HetGraph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut queue = VecDeque::new();
    prev.insert(from, from);
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        for &(next, _) in graph.neighbors(node) {
            if !prev.contains_key(&next) {
                prev.insert(next, node);
                if next == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

/// Connected components; returns a component id per node (dense, 0-based)
/// and the number of components.
pub fn connected_components(graph: &HetGraph) -> (Vec<usize>, usize) {
    let n = graph.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[start] = next;
        queue.push_back(NodeId(start as u32));
        while let Some(node) = queue.pop_front() {
            for &(nb, _) in graph.neighbors(node) {
                if comp[nb.0 as usize] == usize::MAX {
                    comp[nb.0 as usize] = next;
                    queue.push_back(nb);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Degree centrality, normalized by `n - 1` (0 for a singleton graph).
pub fn degree_centrality(graph: &HetGraph) -> Vec<f64> {
    let n = graph.num_nodes();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n).map(|i| graph.degree(NodeId(i as u32)) as f64 / (n - 1) as f64).collect()
}

/// PageRank with uniform teleport. Returns one score per node, summing
/// to ~1 over each connected graph.
pub fn pagerank(graph: &HetGraph, damping: f64, iterations: usize) -> Vec<f64> {
    personalized_pagerank(graph, &[], damping, iterations)
}

/// Personalized PageRank: teleport mass concentrates on `seeds` (uniform
/// over all nodes when `seeds` is empty).
///
/// This is the topology-enhanced retrieval scorer: seeding with the query's
/// anchor entities makes scores measure "relevance reachable through the
/// graph structure" — the sparse traversal §III.B contrasts with dense
/// retrieval.
pub fn personalized_pagerank(
    graph: &HetGraph,
    seeds: &[NodeId],
    damping: f64,
    iterations: usize,
) -> Vec<f64> {
    personalized_pagerank_pool(graph, seeds, damping, iterations, parkit::global())
}

/// [`personalized_pagerank`] on an explicit [`Pool`]. Output is
/// bit-identical for any pool width: each power iteration is a *gather*
/// (`next[i] = Σ rank[nb] / deg(nb)`, valid because adjacency is stored
/// symmetrically), so every `next[i]` sums its neighbors in adjacency
/// order regardless of scheduling, and the dangling mass reduces over
/// fixed-size chunks combined in chunk order.
pub fn personalized_pagerank_pool(
    graph: &HetGraph,
    seeds: &[NodeId],
    damping: f64,
    iterations: usize,
    pool: Pool,
) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let teleport: Vec<f64> = if seeds.is_empty() {
        vec![1.0 / n as f64; n]
    } else {
        let mut t = vec![0.0; n];
        let w = 1.0 / seeds.len() as f64;
        for s in seeds {
            t[s.0 as usize] += w;
        }
        t
    };
    let inv_deg: Vec<f64> = (0..n)
        .map(|i| {
            let deg = graph.degree(NodeId(i as u32));
            if deg == 0 {
                0.0
            } else {
                1.0 / deg as f64
            }
        })
        .collect();
    let mut rank = teleport.clone();
    for _ in 0..iterations {
        // Dangling mass redistributes along the teleport vector.
        let dangling = pool
            .par_reduce_range(
                n,
                NODE_CHUNK,
                |r| r.filter(|&i| inv_deg[i] == 0.0).map(|i| rank[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap_or(0.0);
        rank = pool.par_map_range_chunked(n, NODE_CHUNK, |i| {
            let mut inflow = 0.0;
            for &(nb, _) in graph.neighbors(NodeId(i as u32)) {
                let j = nb.0 as usize;
                inflow += rank[j] * inv_deg[j];
            }
            (1.0 - damping) * teleport[i] + damping * (inflow + dangling * teleport[i])
        });
    }
    rank
}

/// Closeness centrality of one node: `(reachable - 1) / total_distance`,
/// scaled by reachable fraction (Wasserman-Faust). 0 for isolated nodes.
pub fn closeness(graph: &HetGraph, node: NodeId) -> f64 {
    let reached = bfs_within(graph, node, usize::MAX);
    let n = graph.num_nodes();
    if reached.len() <= 1 || n <= 1 {
        return 0.0;
    }
    let total: usize = reached.iter().map(|&(_, d)| d).sum();
    if total == 0 {
        return 0.0;
    }
    let r = reached.len() as f64;
    ((r - 1.0) / total as f64) * ((r - 1.0) / (n as f64 - 1.0))
}

/// Approximate betweenness centrality via sampled single-source BFS
/// (Brandes' algorithm restricted to `samples` pivots).
pub fn approx_betweenness(graph: &HetGraph, samples: usize, seed: u64) -> Vec<f64> {
    approx_betweenness_pool(graph, samples, seed, parkit::global())
}

/// [`approx_betweenness`] on an explicit [`Pool`]. Pivots are drawn
/// sequentially from the seed *before* dispatch, each pivot's Brandes pass
/// runs independently, and per-pivot contributions are accumulated in
/// pivot order — so the result is bit-identical for any pool width.
pub fn approx_betweenness_pool(
    graph: &HetGraph,
    samples: usize,
    seed: u64,
    pool: Pool,
) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut centrality = vec![0.0f64; n];
    if n < 3 || samples == 0 {
        return centrality;
    }
    let mut rng = Rng::new(seed);
    let pivots: Vec<usize> = (0..samples.min(n)).map(|_| rng.gen_range(0..n)).collect();
    let contributions = pool.par_map(&pivots, |&s| brandes_from(graph, NodeId(s as u32)));
    // Index-ordered merge: sum per-pivot vectors in pivot order so float
    // association is independent of which worker ran which pivot.
    for contrib in &contributions {
        for (c, d) in centrality.iter_mut().zip(contrib) {
            *c += d;
        }
    }
    // Scale to full-graph estimate.
    let scale = n as f64 / pivots.len() as f64 / 2.0; // /2: undirected
    for c in centrality.iter_mut() {
        *c *= scale;
    }
    centrality
}

/// One Brandes single-source accumulation: dependency scores of every node
/// with respect to shortest paths from `s`.
fn brandes_from(graph: &HetGraph, s: NodeId) -> Vec<f64> {
    let mut contrib = vec![0.0f64; graph.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut preds: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut sigma: HashMap<NodeId, f64> = HashMap::new();
    let mut dist: HashMap<NodeId, i64> = HashMap::new();
    sigma.insert(s, 1.0);
    dist.insert(s, 0);
    let mut queue = VecDeque::new();
    queue.push_back(s);
    while let Some(v) = queue.pop_front() {
        stack.push(v);
        let dv = dist[&v];
        for &(w, _) in graph.neighbors(v) {
            if !dist.contains_key(&w) {
                dist.insert(w, dv + 1);
                queue.push_back(w);
            }
            if dist[&w] == dv + 1 {
                *sigma.entry(w).or_insert(0.0) += sigma[&v];
                preds.entry(w).or_default().push(v);
            }
        }
    }
    let mut delta: HashMap<NodeId, f64> = HashMap::new();
    while let Some(w) = stack.pop() {
        let dw = *delta.get(&w).unwrap_or(&0.0);
        if let Some(ps) = preds.get(&w) {
            for &v in ps {
                let d = (sigma[&v] / sigma[&w]) * (1.0 + dw);
                *delta.entry(v).or_insert(0.0) += d;
            }
        }
        if w != s {
            contrib[w.0 as usize] = dw;
        }
    }
    contrib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use unisem_slm::EntityKind;

    /// Path graph: e0 - e1 - e2 - e3, plus isolated e4.
    fn path_graph() -> (HetGraph, Vec<NodeId>) {
        let mut g = HetGraph::new();
        let ids: Vec<NodeId> =
            (0..5).map(|i| g.add_entity(&format!("n{i}"), EntityKind::Other)).collect();
        for w in ids[..4].windows(2) {
            g.add_edge(w[0], w[1], EdgeKind::Mentions);
        }
        (g, ids)
    }

    /// Star graph: hub connected to 4 leaves.
    fn star_graph() -> (HetGraph, NodeId, Vec<NodeId>) {
        let mut g = HetGraph::new();
        let hub = g.add_entity("hub", EntityKind::Other);
        let leaves: Vec<NodeId> = (0..4)
            .map(|i| {
                let l = g.add_entity(&format!("leaf{i}"), EntityKind::Other);
                g.add_edge(hub, l, EdgeKind::Mentions);
                l
            })
            .collect();
        (g, hub, leaves)
    }

    #[test]
    fn bfs_respects_hops() {
        let (g, ids) = path_graph();
        let r1 = bfs_within(&g, ids[0], 1);
        assert_eq!(r1.len(), 2);
        let r2 = bfs_within(&g, ids[0], 2);
        assert_eq!(r2.len(), 3);
        let all = bfs_within(&g, ids[0], 10);
        assert_eq!(all.len(), 4, "isolated node unreachable");
        assert_eq!(all.iter().find(|&&(n, _)| n == ids[3]).unwrap().1, 3);
    }

    #[test]
    fn multi_source_takes_min() {
        let (g, ids) = path_graph();
        let d = multi_source_hops(&g, &[ids[0], ids[3]]);
        assert_eq!(d[&ids[1]], 1);
        assert_eq!(d[&ids[2]], 1);
        assert!(!d.contains_key(&ids[4]));
    }

    #[test]
    fn dijkstra_uses_costs() {
        let mut g = HetGraph::new();
        let a = g.add_entity("a", EntityKind::Other);
        let b = g.add_entity("b", EntityKind::Other);
        let c = g.add_entity("c", EntityKind::Other);
        g.add_edge(a, b, EdgeKind::Mentions); // cost 1.0
        g.add_edge(b, c, EdgeKind::NextChunk); // cost 2.0
        let d = dijkstra_within(&g, a, 10.0);
        assert_eq!(d[&c], 3.0);
        let cut = dijkstra_within(&g, a, 1.5);
        assert!(!cut.contains_key(&c));
        assert!(cut.contains_key(&b));
    }

    #[test]
    fn shortest_path_found_and_missing() {
        let (g, ids) = path_graph();
        let p = shortest_path(&g, ids[0], ids[3]).unwrap();
        assert_eq!(p, vec![ids[0], ids[1], ids[2], ids[3]]);
        assert!(shortest_path(&g, ids[0], ids[4]).is_none());
        assert_eq!(shortest_path(&g, ids[2], ids[2]).unwrap(), vec![ids[2]]);
    }

    #[test]
    fn components_counted() {
        let (g, ids) = path_graph();
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(comp[ids[0].0 as usize], comp[ids[3].0 as usize]);
        assert_ne!(comp[ids[0].0 as usize], comp[ids[4].0 as usize]);
    }

    #[test]
    fn degree_centrality_star() {
        let (g, hub, leaves) = star_graph();
        let c = degree_centrality(&g);
        assert!((c[hub.0 as usize] - 1.0).abs() < 1e-9);
        for l in leaves {
            assert!((c[l.0 as usize] - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_hub_highest() {
        let (g, hub, _) = star_graph();
        let pr = pagerank(&g, 0.85, 50);
        let hub_score = pr[hub.0 as usize];
        assert!(pr.iter().enumerate().all(|(i, &s)| i == hub.0 as usize || s <= hub_score));
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass conserved, got {total}");
    }

    #[test]
    fn personalized_pagerank_concentrates_near_seed() {
        let (g, ids) = path_graph();
        let ppr = personalized_pagerank(&g, &[ids[0]], 0.85, 60);
        // Mass decays with distance from the seed end of the path.
        let near = ppr[ids[0].0 as usize] + ppr[ids[1].0 as usize];
        let far = ppr[ids[2].0 as usize] + ppr[ids[3].0 as usize];
        assert!(near > far, "near={near} far={far}");
        assert!(ppr[ids[1].0 as usize] > ppr[ids[3].0 as usize]);
        assert_eq!(ppr[ids[4].0 as usize], 0.0, "unreachable from seed");
    }

    #[test]
    fn pagerank_empty_graph() {
        let g = HetGraph::new();
        assert!(pagerank(&g, 0.85, 10).is_empty());
    }

    #[test]
    fn closeness_center_beats_ends() {
        let (g, ids) = path_graph();
        let center = closeness(&g, ids[1]);
        let end = closeness(&g, ids[0]);
        assert!(center > end);
        assert_eq!(closeness(&g, ids[4]), 0.0);
    }

    #[test]
    fn betweenness_center_of_path_highest() {
        let (g, ids) = path_graph();
        let b = approx_betweenness(&g, 50, 7);
        // Middle nodes lie on more shortest paths than endpoints.
        assert!(b[ids[1].0 as usize] > b[ids[0].0 as usize]);
        assert!(b[ids[2].0 as usize] > b[ids[3].0 as usize]);
        assert_eq!(b[ids[4].0 as usize], 0.0);
    }

    #[test]
    fn betweenness_deterministic_with_seed() {
        let (g, _) = path_graph();
        assert_eq!(approx_betweenness(&g, 10, 42), approx_betweenness(&g, 10, 42));
    }

    #[test]
    fn pagerank_bit_identical_across_pool_widths() {
        let (g, _) = path_graph();
        let reference = personalized_pagerank_pool(&g, &[], 0.85, 50, Pool::sequential());
        for threads in [2, 4, 8] {
            let got = personalized_pagerank_pool(&g, &[], 0.85, 50, Pool::new(threads));
            let same = reference.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads}: {got:?} != {reference:?}");
        }
    }

    #[test]
    fn betweenness_bit_identical_across_pool_widths() {
        let (g, _) = path_graph();
        let reference = approx_betweenness_pool(&g, 20, 42, Pool::sequential());
        for threads in [2, 4, 8] {
            let got = approx_betweenness_pool(&g, 20, 42, Pool::new(threads));
            let same = reference.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads}");
        }
    }

    #[test]
    fn dangling_mass_redistributed() {
        // Node with no edges still gets teleport mass; total conserved.
        let mut g = HetGraph::new();
        let a = g.add_entity("a", EntityKind::Other);
        let b = g.add_entity("b", EntityKind::Other);
        g.add_edge(a, b, EdgeKind::Mentions);
        g.add_entity("isolated", EntityKind::Other);
        let pr = pagerank(&g, 0.85, 80);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(pr[2] > 0.0);
    }
}
