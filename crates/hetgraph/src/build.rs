//! Graph construction from the substrate stores.
//!
//! Implements §III.A's indexing pipeline: "text chunks, named entities, and
//! relational cues … interlinked in a single topological structure", with
//! edges also "encoding relationships such as 'Patient X received Drug Y on
//! Date Z'".
//!
//! Sources:
//! - **Documents** (via [`unisem_docstore::DocStore`]): every chunk becomes
//!   a node; SLM tagging adds entity nodes + `Mentions` edges; verb cues
//!   between co-mentioned entities add `RelatesTo(verb)` edges; date/quarter
//!   mentions add `Temporal` edges; consecutive chunks link by `NextChunk`.
//! - **Relational tables**: a table node, one record node per row with
//!   `BelongsTo`, and `HasAttribute(column)` edges from records to entity
//!   nodes recognized in string cells (plus `Temporal` edges for date
//!   cells).

use unisem_docstore::DocStore;
use unisem_relstore::{DataType, Table, Value};
use unisem_slm::pos::{pos_tag, PosTag};
use unisem_slm::{EntityKind, EntityMention, Slm};
use unisem_text::normalize::stem;
use unisem_text::tokenize::Token;

use crate::graph::{EdgeKind, HetGraph, NodeId};

/// Statistics from a build run (feeds experiment E2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphBuildStats {
    /// Chunks indexed.
    pub chunks: usize,
    /// Entity mentions observed (not deduplicated).
    pub mentions: usize,
    /// Distinct entity nodes created.
    pub entities: usize,
    /// Relational cue edges added.
    pub relation_edges: usize,
    /// Records indexed from tables.
    pub records: usize,
    /// Total nodes in the finished graph (populated by
    /// [`GraphBuilder::finish`]).
    pub nodes: usize,
    /// Total edges in the finished graph (populated by
    /// [`GraphBuilder::finish`]).
    pub edges: usize,
}

/// Incremental graph builder.
#[derive(Debug)]
pub struct GraphBuilder {
    graph: HetGraph,
    slm: Slm,
    stats: GraphBuildStats,
    index_entities: bool,
}

impl GraphBuilder {
    /// Creates a builder using `slm` for tagging.
    pub fn new(slm: Slm) -> Self {
        Self {
            graph: HetGraph::new(),
            slm,
            stats: GraphBuildStats::default(),
            index_entities: true,
        }
    }

    /// Resumes building on an existing graph (incremental ingest and WAL
    /// replay): new chunks, rows, and entities extend `graph` exactly as
    /// if they had been part of the original build, because every graph
    /// mutator dedupes on its logical key.
    pub fn resume(slm: Slm, graph: HetGraph) -> Self {
        Self { graph, slm, stats: GraphBuildStats::default(), index_entities: true }
    }

    /// Ablation switch (DESIGN.md §5 item 2): when disabled, no entity
    /// nodes are created — chunks and records stay unconnected islands and
    /// retrieval degrades to its lexical fallback.
    pub fn set_index_entities(&mut self, enabled: bool) {
        self.index_entities = enabled;
    }

    /// The graph built so far.
    pub fn graph(&self) -> &HetGraph {
        &self.graph
    }

    /// Build statistics so far.
    pub fn stats(&self) -> GraphBuildStats {
        self.stats
    }

    /// Finishes, returning the graph and stats (with the final node and
    /// edge totals filled in).
    pub fn finish(self) -> (HetGraph, GraphBuildStats) {
        let mut stats = self.stats;
        stats.nodes = self.graph.num_nodes();
        stats.edges = self.graph.num_edges();
        (self.graph, stats)
    }

    /// Indexes every chunk of a document store.
    ///
    /// The per-chunk SLM passes (entity tagging + POS tagging) dominate
    /// build cost and are independent, so they fan out across the global
    /// parkit pool; graph mutation then replays sequentially in chunk
    /// order, so node/edge ids are identical to a single-threaded build.
    pub fn add_docstore(&mut self, docs: &DocStore) {
        self.add_docstore_from(docs, 0);
    }

    /// Indexes the chunks of `docs` starting at chunk index `from_chunk` —
    /// the incremental form used by delta ingest and WAL replay. The
    /// `NextChunk` chain continues from the chunk just before the window
    /// when it belongs to the same document, so an incremental extension
    /// produces the same edges as a from-scratch build of the final store.
    pub fn add_docstore_from(&mut self, docs: &DocStore, from_chunk: usize) {
        let all = docs.chunks();
        if from_chunk >= all.len() {
            return;
        }
        let chunks = &all[from_chunk..];
        let tagged: Vec<Option<(Vec<EntityMention>, Vec<(Token, PosTag)>)>> = if self.index_entities
        {
            let slm = &self.slm;
            parkit::global()
                .par_map(chunks, |c| Some((slm.tag_entities(&c.text), pos_tag(&c.text))))
        } else {
            chunks.iter().map(|_| None).collect()
        };
        // (doc_id, chunk node) — seeded from the chunk preceding the
        // window so a resumed build continues the document's chain.
        let mut prev: Option<(usize, NodeId)> = from_chunk
            .checked_sub(1)
            .and_then(|i| all.get(i))
            .and_then(|c| self.graph.chunk_node(c.id).map(|n| (c.doc_id, n)));
        for (chunk, tags) in chunks.iter().zip(tagged) {
            let cnode = self.graph.add_chunk(chunk.id, chunk.doc_id, &chunk.text);
            self.stats.chunks += 1;
            // Chain consecutive chunks of the same document.
            if let Some((prev_doc, prev_node)) = prev {
                if prev_doc == chunk.doc_id {
                    self.graph.add_edge(prev_node, cnode, EdgeKind::NextChunk);
                }
            }
            prev = Some((chunk.doc_id, cnode));
            if let Some((mentions, pos)) = tags {
                self.add_chunk_entities(cnode, mentions, pos);
            }
        }
    }

    /// Wires entity/mention/relation/temporal edges from a chunk's
    /// precomputed tagging.
    fn add_chunk_entities(
        &mut self,
        cnode: NodeId,
        mentions: Vec<EntityMention>,
        tags: Vec<(Token, PosTag)>,
    ) {
        self.stats.mentions += mentions.len();

        // Entity nodes + mention edges. Value-kind entities (dates,
        // quarters, percents) become nodes too — they are the temporal/
        // measurement anchors — but bare quantities are too noisy to index.
        let mut placed: Vec<(NodeId, usize, usize, EntityKind)> = Vec::new();
        for m in &mentions {
            if m.kind == EntityKind::Quantity {
                continue;
            }
            let before = self.graph.num_nodes();
            let enode = self.graph.add_entity(&m.canonical(), m.kind);
            if self.graph.num_nodes() > before {
                self.stats.entities += 1;
            }
            self.graph.add_edge(cnode, enode, EdgeKind::Mentions);
            placed.push((enode, m.start, m.end, m.kind));
        }

        // Relational cues: for consecutive non-value entity pairs, use the
        // verb between them as the relation label.
        let referential: Vec<&(NodeId, usize, usize, EntityKind)> =
            placed.iter().filter(|(_, _, _, k)| !k.is_value()).collect();
        for pair in referential.windows(2) {
            let (a_node, _, a_end, _) = *pair[0];
            let (b_node, b_start, _, _) = *pair[1];
            if a_node == b_node {
                continue;
            }
            let verb = tags
                .iter()
                .find(|(t, p)| *p == PosTag::Verb && t.start >= a_end && t.end <= b_start)
                .map(|(t, _)| stem(&t.lower()));
            if let Some(verb) = verb {
                self.graph.add_edge(a_node, b_node, EdgeKind::RelatesTo(verb));
                self.stats.relation_edges += 1;
            }
        }

        // Temporal edges: every date/quarter entity links to the
        // referential entities in the same chunk.
        let temporal: Vec<NodeId> = placed
            .iter()
            .filter(|(_, _, _, k)| matches!(k, EntityKind::Date | EntityKind::Quarter))
            .map(|(n, _, _, _)| *n)
            .collect();
        for &t in &temporal {
            for r in &referential {
                if r.0 != t {
                    self.graph.add_edge(t, r.0, EdgeKind::Temporal);
                }
            }
        }
    }

    /// Indexes a relational table: table node, record nodes, and attribute
    /// edges to entities recognized in string cells.
    pub fn add_table(&mut self, name: &str, table: &Table) {
        self.add_table_rows(name, table, 0);
    }

    /// Indexes the rows of `table` starting at `from_row` — the
    /// incremental form used by delta ingest and WAL replay. The table
    /// node and any already-indexed rows dedupe, so replaying a prefix is
    /// idempotent.
    pub fn add_table_rows(&mut self, name: &str, table: &Table, from_row: usize) {
        let tnode = self.graph.add_table(name);
        for row in from_row..table.num_rows() {
            let rnode = self.graph.add_record(name, row);
            self.stats.records += 1;
            self.graph.add_edge(rnode, tnode, EdgeKind::BelongsTo);
            if !self.index_entities {
                continue;
            }
            for (col_idx, col) in table.schema().columns().iter().enumerate() {
                let cell = table.cell(row, col_idx);
                match (col.dtype, cell) {
                    (DataType::Str, Value::Str(s)) => {
                        // Link when the tagger recognizes the value as an
                        // entity (lexicon hit or pattern); otherwise the
                        // cell stays table-internal.
                        let tagged = self.slm.tag_entities(s);
                        for m in tagged {
                            if m.kind == EntityKind::Quantity {
                                continue;
                            }
                            let before = self.graph.num_nodes();
                            let enode = self.graph.add_entity(&m.canonical(), m.kind);
                            if self.graph.num_nodes() > before {
                                self.stats.entities += 1;
                            }
                            self.graph.add_edge(
                                rnode,
                                enode,
                                EdgeKind::HasAttribute(col.name.clone()),
                            );
                        }
                    }
                    (DataType::Date, Value::Date(d)) => {
                        let before = self.graph.num_nodes();
                        let enode = self.graph.add_entity(&d.to_string(), EntityKind::Date);
                        if self.graph.num_nodes() > before {
                            self.stats.entities += 1;
                        }
                        self.graph.add_edge(rnode, enode, EdgeKind::Temporal);
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_relstore::{Schema, Table};
    use unisem_slm::{Lexicon, SlmConfig};

    fn slm() -> Slm {
        let lexicon = Lexicon::new().with_entries([
            ("Drug A", EntityKind::Drug),
            ("Drug B", EntityKind::Drug),
            ("Product Alpha", EntityKind::Product),
            ("Patient X", EntityKind::Person),
            ("headache", EntityKind::Condition),
        ]);
        Slm::new(SlmConfig { lexicon, ..SlmConfig::default() })
    }

    fn docs() -> DocStore {
        let mut d = DocStore::default();
        d.add_document(
            "note",
            "Patient X received Drug A in Q1 2024. The headache improved. \
             Drug B was considered but not prescribed.",
            "clinical",
        );
        d.add_document("review", "Product Alpha works well. Product Alpha shipped fast.", "review");
        d
    }

    #[test]
    fn chunks_and_entities_indexed() {
        let mut b = GraphBuilder::new(slm());
        b.add_docstore(&docs());
        let (g, stats) = b.finish();
        assert!(stats.chunks >= 2);
        assert!(stats.entities >= 4);
        assert!(g.entity_by_name("drug a").is_some());
        assert!(g.entity_by_name("product alpha").is_some());
    }

    #[test]
    fn mentions_connect_chunk_to_entity() {
        let mut b = GraphBuilder::new(slm());
        b.add_docstore(&docs());
        let g = b.graph();
        let drug = g.entity_by_name("drug a").unwrap();
        let has_chunk_neighbor = g
            .neighbors(drug)
            .iter()
            .any(|&(n, e)| g.node(n).kind.is_chunk() && g.edge(e).kind == EdgeKind::Mentions);
        assert!(has_chunk_neighbor);
    }

    #[test]
    fn relation_cue_from_verb() {
        let mut b = GraphBuilder::new(slm());
        b.add_docstore(&docs());
        let g = b.graph();
        let patient = g.entity_by_name("patient x").unwrap();
        let related = g.neighbors(patient).iter().any(
            |&(_, e)| matches!(&g.edge(e).kind, EdgeKind::RelatesTo(v) if v.starts_with("receiv")),
        );
        assert!(related, "expected relates_to:receive edge from Patient X");
    }

    #[test]
    fn temporal_edges_to_quarter() {
        let mut b = GraphBuilder::new(slm());
        b.add_docstore(&docs());
        let g = b.graph();
        let q = g.entity_by_name("q1 2024").expect("quarter entity");
        let has_temporal =
            g.neighbors(q).iter().any(|&(_, e)| g.edge(e).kind == EdgeKind::Temporal);
        assert!(has_temporal);
    }

    #[test]
    fn entity_dedup_across_chunks() {
        let mut b = GraphBuilder::new(slm());
        b.add_docstore(&docs());
        let g = b.graph();
        // "Product Alpha" appears twice; one node.
        let count = g
            .entities()
            .filter(|n| matches!(&n.kind, crate::graph::NodeKind::Entity { name, .. } if name == "product alpha"))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn table_records_linked() {
        use unisem_relstore::DataType;
        let mut b = GraphBuilder::new(slm());
        let t = Table::from_rows(
            Schema::of(&[("product", DataType::Str), ("revenue", DataType::Float)]),
            vec![
                vec![Value::str("Product Alpha"), Value::Float(100.0)],
                vec![Value::str("unknown thing"), Value::Float(50.0)],
            ],
        )
        .unwrap();
        b.add_table("sales", &t);
        let (g, stats) = b.finish();
        assert_eq!(stats.records, 2);
        let r0 = g.record_node("sales", 0).unwrap();
        let alpha = g.entity_by_name("product alpha").unwrap();
        let linked = g.neighbors(r0).iter().any(|&(n, e)| {
            n == alpha && matches!(&g.edge(e).kind, EdgeKind::HasAttribute(c) if c == "product")
        });
        assert!(linked);
        // Records belong to the table node.
        let tnode = g.neighbors(r0).iter().any(|&(n, _)| {
            matches!(&g.node(n).kind, crate::graph::NodeKind::Table { name } if name == "sales")
        });
        assert!(tnode);
    }

    #[test]
    fn date_cells_get_temporal_edges() {
        use unisem_relstore::{DataType, Date};
        let mut b = GraphBuilder::new(slm());
        let t = Table::from_rows(
            Schema::of(&[("when", DataType::Date)]),
            vec![vec![Value::Date(Date::new(2024, 3, 5).unwrap())]],
        )
        .unwrap();
        b.add_table("events", &t);
        let g = b.graph();
        let d = g.entity_by_name("2024-03-05").unwrap();
        let r = g.record_node("events", 0).unwrap();
        assert!(g.neighbors(r).iter().any(|&(n, _)| n == d));
    }

    #[test]
    fn cross_modal_connectivity() {
        // A table record and a text chunk naming the same entity end up two
        // hops apart — the cross-modal context §I says traditional systems
        // miss.
        use crate::algo::shortest_path;
        use unisem_relstore::DataType;
        let mut b = GraphBuilder::new(slm());
        b.add_docstore(&docs());
        let t = Table::from_rows(
            Schema::of(&[("drug", DataType::Str)]),
            vec![vec![Value::str("Drug A")]],
        )
        .unwrap();
        b.add_table("trials", &t);
        let g = b.graph();
        let record = g.record_node("trials", 0).unwrap();
        let chunk = g.chunk_node(0).unwrap();
        let path = shortest_path(g, record, chunk).expect("connected across modalities");
        assert!(path.len() <= 3, "record -> entity -> chunk");
    }

    #[test]
    fn entity_indexing_ablation() {
        let mut b = GraphBuilder::new(slm());
        b.set_index_entities(false);
        b.add_docstore(&docs());
        let t = Table::from_rows(
            unisem_relstore::Schema::of(&[("drug", unisem_relstore::DataType::Str)]),
            vec![vec![Value::str("Drug A")]],
        )
        .unwrap();
        b.add_table("trials", &t);
        let (g, stats) = b.finish();
        assert_eq!(stats.entities, 0);
        assert!(g.entity_by_name("drug a").is_none());
        assert!(g.entities().count() == 0);
        // Chunks and records still exist (with structural edges only).
        assert!(stats.chunks > 0);
        assert!(g.record_node("trials", 0).is_some());
    }

    #[test]
    fn incremental_build_matches_from_scratch() {
        use unisem_relstore::DataType;
        let table_v1 = Table::from_rows(
            Schema::of(&[("product", DataType::Str)]),
            vec![vec![Value::str("Product Alpha")]],
        )
        .unwrap();
        let mut table_v2 = table_v1.clone();
        table_v2.push_row(vec![Value::str("Drug B")]).unwrap();

        let mut store = DocStore::default();
        store.add_document(
            "note",
            "Patient X received Drug A in Q1 2024. The headache improved.",
            "clinical",
        );

        let indexed_chunks = store.chunks().len();
        let mut extended = store.clone();
        extended.add_document("review", "Product Alpha works well. Drug B shipped.", "review");

        // One builder applies the whole operation sequence...
        let mut cont = GraphBuilder::new(slm());
        cont.add_docstore(&store);
        cont.add_table("sales", &table_v1);
        cont.add_docstore_from(&extended, indexed_chunks);
        cont.add_table_rows("sales", &table_v2, 1);
        let (gi, _) = cont.finish();

        // ...versus a builder that stops after the base build and a second
        // builder resumed on its graph (the WAL-replay path). Same
        // operation order ⇒ identical node/edge id assignment.
        let mut base = GraphBuilder::new(slm());
        base.add_docstore(&store);
        base.add_table("sales", &table_v1);
        let (gbase, _) = base.finish();
        let mut resumed = GraphBuilder::resume(slm(), gbase);
        resumed.add_docstore_from(&extended, indexed_chunks);
        resumed.add_table_rows("sales", &table_v2, 1);
        let (gf, _) = resumed.finish();

        assert_eq!(gi.num_nodes(), gf.num_nodes());
        assert_eq!(gi.num_edges(), gf.num_edges());
        for id in 0..gi.num_nodes() as u32 {
            let id = crate::graph::NodeId(id);
            assert_eq!(gi.node(id).kind, gf.node(id).kind, "node {id:?} diverged");
        }
        for (a, b) in gi.edges().iter().zip(gf.edges()) {
            assert_eq!((a.a, a.b, &a.kind), (b.a, b.b, &b.kind));
        }
    }

    #[test]
    fn next_chunk_chain_within_doc_only() {
        let mut b = GraphBuilder::new(slm());
        let mut d = DocStore::new(unisem_text::ChunkConfig { max_tokens: 4, overlap_sentences: 0 });
        d.add_document("a", "First alpha beta. Second gamma delta.", "x");
        d.add_document("b", "Other document text here.", "x");
        b.add_docstore(&d);
        let g = b.graph();
        let mut next_edges = 0;
        for e in g.edges() {
            if e.kind == EdgeKind::NextChunk {
                next_edges += 1;
                let (a, bnode) = (g.node(e.a), g.node(e.b));
                match (&a.kind, &bnode.kind) {
                    (
                        crate::graph::NodeKind::Chunk { doc_id: d1, .. },
                        crate::graph::NodeKind::Chunk { doc_id: d2, .. },
                    ) => assert_eq!(d1, d2),
                    _ => panic!("next_chunk between non-chunks"),
                }
            }
        }
        assert!(next_edges >= 1);
    }
}
