//! # unisem-hetgraph
//!
//! Semantic-aware heterogeneous graph indexing (§III.A of the paper).
//!
//! The graph unifies the three data modalities in one topological structure:
//!
//! - **Chunk nodes** — text segments from the document store,
//! - **Entity nodes** — named entities extracted by the SLM tagger,
//!   deduplicated by canonical name,
//! - **Record / table nodes** — rows of relational tables and flattened
//!   JSON collections,
//! - **labeled edges** — mentions, inferred relational cues ("Customer X
//!   *purchased* Product Y"), temporal links, and record-attribute links.
//!
//! [`algo`] supplies the topology machinery §III.B's retrieval builds on:
//! BFS/k-hop traversal, degree/closeness/PageRank/personalized-PageRank
//! centrality, connected components, and shortest paths.
//!
//! [`build`] constructs the graph from the substrate stores using the SLM
//! for tagging and relation cue inference.

pub mod algo;
pub mod build;
pub mod graph;

pub use build::{GraphBuildStats, GraphBuilder};
pub use graph::{Edge, EdgeId, EdgeKind, HetGraph, Node, NodeId, NodeKind};
