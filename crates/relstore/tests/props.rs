//! Property-based tests: relational algebra invariants (detkit harness).

use detkit::prop::{i32s, i8s, string_of, usizes, vec_of, zip, zip3, Gen};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use unisem_relstore::{DataType, Database, Expr, LogicalPlan, Schema, Table, Value};

/// Generator: a small typed table with (int, float, str) columns.
fn small_table() -> Gen<Table> {
    vec_of(&zip3(&i8s(i8::MIN, i8::MAX), &i32s(-1000, 999), &string_of("abcd", 1, 3)), 0, 29).map(
        |rows| {
            let schema =
                Schema::of(&[("k", DataType::Int), ("v", DataType::Float), ("s", DataType::Str)]);
            Table::from_rows(
                schema,
                rows.iter()
                    .map(|(k, v, s)| {
                        vec![
                            Value::Int(i64::from(*k)),
                            Value::Float(f64::from(*v) / 10.0),
                            Value::str(s.clone()),
                        ]
                    })
                    .collect(),
            )
            .expect("typed rows")
        },
    )
}

fn db_with(t: Table) -> Database {
    let mut db = Database::new();
    db.create_table("t", t).expect("fresh");
    db
}

// Filtering never increases row count, and double-filtering with the
// same predicate is idempotent.
prop_check!(filter_monotone_and_idempotent, small_table(), |t| {
    let db = db_with(t.clone());
    let pred = Expr::col("k").gt(Expr::lit(0i64));
    let once = db.run_plan(&LogicalPlan::scan("t").filter(pred.clone())).unwrap();
    prop_assert!(once.num_rows() <= t.num_rows());
    let mut db2 = Database::new();
    db2.create_table("t", once.clone()).unwrap();
    let twice = db2.run_plan(&LogicalPlan::scan("t").filter(pred)).unwrap();
    prop_assert_eq!(once.num_rows(), twice.num_rows());
    Ok(())
});

// p AND NOT p selects nothing; p OR NOT p selects every non-NULL row.
prop_check!(excluded_middle, small_table(), |t| {
    let db = db_with(t.clone());
    let p = Expr::col("v").gt(Expr::lit(0.0));
    let contradiction = p.clone().and(Expr::Not(Box::new(p.clone())));
    let none = db.run_plan(&LogicalPlan::scan("t").filter(contradiction)).unwrap();
    prop_assert_eq!(none.num_rows(), 0);
    let tautology = p.clone().or(Expr::Not(Box::new(p)));
    let all = db.run_plan(&LogicalPlan::scan("t").filter(tautology)).unwrap();
    prop_assert_eq!(all.num_rows(), t.num_rows());
    Ok(())
});

// SUM over GROUP BY groups equals the global SUM.
prop_check!(group_sums_partition_global_sum, small_table(), |t| {
    let db = db_with(t.clone());
    let global = db.run_sql("SELECT SUM(v) AS s FROM t").unwrap();
    let grouped = db.run_sql("SELECT s, SUM(v) AS part FROM t GROUP BY s").unwrap();
    let total = global.cell(0, 0).as_f64();
    let parts: f64 = (0..grouped.num_rows()).filter_map(|i| grouped.cell(i, 1).as_f64()).sum();
    match total {
        None => prop_assert_eq!(grouped.num_rows(), 0),
        Some(total) => prop_assert!((total - parts).abs() < 1e-6, "{total} vs {parts}"),
    }
    Ok(())
});

// ORDER BY produces a sorted permutation of the input.
prop_check!(sort_is_permutation_and_ordered, small_table(), |t| {
    let db = db_with(t.clone());
    let out = db.run_sql("SELECT * FROM t ORDER BY v ASC").unwrap();
    prop_assert_eq!(out.num_rows(), t.num_rows());
    let vals: Vec<Option<f64>> = (0..out.num_rows()).map(|i| out.cell(i, 1).as_f64()).collect();
    for w in vals.windows(2) {
        if let (Some(a), Some(b)) = (w[0], w[1]) {
            prop_assert!(a <= b);
        }
    }
    // Multiset of keys preserved.
    let mut before: Vec<i64> = t.column(0).iter().filter_map(Value::as_i64).collect();
    let mut after: Vec<i64> = out.column(0).iter().filter_map(Value::as_i64).collect();
    before.sort_unstable();
    after.sort_unstable();
    prop_assert_eq!(before, after);
    Ok(())
});

// LIMIT n yields min(n, rows) and is a prefix of the unlimited result.
prop_check!(limit_prefix, zip(&small_table(), &usizes(0, 39)), |p| {
    let (t, n) = p;
    let db = db_with(t.clone());
    let full = db.run_sql("SELECT * FROM t ORDER BY k").unwrap();
    let limited = db.run_sql(&format!("SELECT * FROM t ORDER BY k LIMIT {n}")).unwrap();
    prop_assert_eq!(limited.num_rows(), full.num_rows().min(*n));
    for i in 0..limited.num_rows() {
        prop_assert_eq!(limited.row(i), full.row(i));
    }
    Ok(())
});

// DISTINCT is idempotent and never increases cardinality.
prop_check!(distinct_idempotent, small_table(), |t| {
    let db = db_with(t.clone());
    let once = db.run_sql("SELECT DISTINCT s FROM t").unwrap();
    prop_assert!(once.num_rows() <= t.num_rows());
    let mut db2 = Database::new();
    db2.create_table("t", once.clone()).unwrap();
    let twice = db2.run_sql("SELECT DISTINCT s FROM t").unwrap();
    prop_assert_eq!(once.num_rows(), twice.num_rows());
    Ok(())
});

// The optimizer never changes results (tested over the plan shapes the
// engine emits: filter over projection over scan).
prop_check!(optimizer_preserves_semantics, zip(&small_table(), &i32s(-10, 9)), |p| {
    let (t, threshold) = p;
    let db = db_with(t.clone());
    let plan = LogicalPlan::scan("t")
        .project(vec![(Expr::col("k"), "a".to_string()), (Expr::col("v"), "b".to_string())])
        .filter(Expr::col("a").gt(Expr::lit(i64::from(*threshold))));
    // run_plan optimizes; exec::execute on the raw plan does not.
    let optimized = db.run_plan(&plan).unwrap();
    let raw = unisem_relstore::exec::execute(&plan, &db).unwrap();
    prop_assert_eq!(optimized, raw);
    Ok(())
});
