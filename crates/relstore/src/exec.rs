//! The physical executor.
//!
//! Straightforward materializing execution: each operator consumes its
//! child's output [`Table`] and produces a new one. Joins are hash joins on
//! the equi-key; aggregation is hash aggregation; sorting is stable.

use std::collections::{HashMap, HashSet};

use crate::catalog::Database;
/// Fixed chunk size for parallel row sweeps (filter/join/sort). A constant
/// — never derived from the thread count — so chunk boundaries and result
/// order are identical at every `UNISEM_THREADS` setting.
const ROW_CHUNK: usize = 512;
use crate::error::{RelError, RelResult};
use crate::expr::Expr;
use crate::plan::{AggExpr, AggFunc, JoinType, LogicalPlan, SortKey};
use crate::schema::{Column, DataType, Schema};
use crate::table::Table;
use crate::value::{GroupKey, Value};

/// Deterministic resource governors for plan execution.
///
/// Defaults impose no bounds, so `execute` behaves exactly as before; the
/// engine's degradation ladder passes finite limits so a pathological plan
/// trips [`RelError::ResourceExhausted`] instead of doing unbounded work.
/// The checks are pure functions of the plan and input tables — never of
/// timing or thread count — so a governed run is replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum rows a single join may materialize (checked against the
    /// exact output cardinality before any output row is built).
    pub max_join_rows: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        Self { max_join_rows: usize::MAX }
    }
}

/// Deterministic work counters for one plan execution.
///
/// Pure functions of the plan and input tables (never of timing or thread
/// count), so they feed the observability layer's byte-identical metric
/// snapshots. Counters accumulate even when execution fails, so a
/// budget-tripped join still reports the scan work that preceded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Base-table rows read by `Scan` nodes.
    pub rows_scanned: usize,
    /// Output rows materialized by `Join` nodes.
    pub rows_joined: usize,
}

impl ExecStats {
    /// Accumulates another execution's counters into this one.
    pub fn merge(&mut self, other: ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_joined += other.rows_joined;
    }
}

/// Executes a logical plan against a database catalog (no resource bounds).
pub fn execute(plan: &LogicalPlan, db: &Database) -> RelResult<Table> {
    execute_with_limits(plan, db, &ExecLimits::default())
}

/// Executes a logical plan under the given resource governors.
pub fn execute_with_limits(
    plan: &LogicalPlan,
    db: &Database,
    limits: &ExecLimits,
) -> RelResult<Table> {
    execute_with_limits_stats(plan, db, limits).0
}

/// Executes a logical plan under the given resource governors, also
/// returning deterministic work counters. The counters are valid whether or
/// not execution succeeded.
pub fn execute_with_limits_stats(
    plan: &LogicalPlan,
    db: &Database,
    limits: &ExecLimits,
) -> (RelResult<Table>, ExecStats) {
    let mut stats = ExecStats::default();
    let result = exec_node(plan, db, limits, &mut stats);
    (result, stats)
}

fn exec_node(
    plan: &LogicalPlan,
    db: &Database,
    limits: &ExecLimits,
    stats: &mut ExecStats,
) -> RelResult<Table> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = db.table(table).cloned()?;
            stats.rows_scanned += t.num_rows();
            Ok(t)
        }
        LogicalPlan::Filter { input, predicate } => {
            let t = exec_node(input, db, limits, stats)?;
            exec_filter(&t, predicate)
        }
        LogicalPlan::Project { input, exprs } => {
            let t = exec_node(input, db, limits, stats)?;
            exec_project(&t, exprs)
        }
        LogicalPlan::Join { left, right, join_type, on } => {
            let l = exec_node(left, db, limits, stats)?;
            let r = exec_node(right, db, limits, stats)?;
            let joined = exec_join(&l, &r, *join_type, on, limits)?;
            stats.rows_joined += joined.num_rows();
            Ok(joined)
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let t = exec_node(input, db, limits, stats)?;
            exec_aggregate(&t, group_by, aggs)
        }
        LogicalPlan::Sort { input, keys } => {
            let t = exec_node(input, db, limits, stats)?;
            exec_sort(&t, keys)
        }
        LogicalPlan::Limit { input, n } => {
            let t = exec_node(input, db, limits, stats)?;
            let indices: Vec<usize> = (0..t.num_rows().min(*n)).collect();
            Ok(t.take(&indices))
        }
        LogicalPlan::Distinct { input } => {
            let t = exec_node(input, db, limits, stats)?;
            exec_distinct(&t)
        }
    }
}

fn exec_filter(t: &Table, predicate: &Expr) -> RelResult<Table> {
    let schema = t.schema().clone();
    // Parallel scan: predicate evaluation fans out over fixed-size row
    // spans; kept indices concatenate in span order and the first error in
    // row order wins, exactly as in a sequential pass.
    let spans = parkit::global().par_reduce_range(
        t.num_rows(),
        ROW_CHUNK,
        |range| {
            let mut keep = Vec::new();
            for i in range {
                let row = t.row(i);
                // SQL WHERE: NULL predicate result drops the row.
                if predicate.eval(&row, &schema)? == Value::Bool(true) {
                    keep.push(i);
                }
            }
            Ok(keep)
        },
        |a: RelResult<Vec<usize>>, b| {
            let (mut a, b) = (a?, b?);
            a.extend(b);
            Ok(a)
        },
    );
    let keep = spans.unwrap_or_else(|| Ok(Vec::new()))?;
    Ok(t.take(&keep))
}

fn exec_project(t: &Table, exprs: &[(Expr, String)]) -> RelResult<Table> {
    let in_schema = t.schema().clone();
    // Infer output column types from the first non-null result, defaulting
    // to Str for empty/all-null columns.
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(t.num_rows());
    for i in 0..t.num_rows() {
        let in_row = t.row(i);
        let out_row: RelResult<Vec<Value>> =
            exprs.iter().map(|(e, _)| e.eval(&in_row, &in_schema)).collect();
        rows.push(out_row?);
    }
    let out_schema = infer_schema(
        exprs.iter().map(|(_, n)| n.clone()).collect(),
        &rows,
        Some((&in_schema, exprs)),
    )?;
    Table::from_rows(out_schema, rows)
}

/// Infers a schema from output names and produced rows; when projecting
/// plain columns, the input schema's declared type is reused.
fn infer_schema(
    names: Vec<String>,
    rows: &[Vec<Value>],
    passthrough: Option<(&Schema, &[(Expr, String)])>,
) -> RelResult<Schema> {
    let arity = names.len();
    let mut dtypes: Vec<Option<DataType>> = vec![None; arity];
    if let Some((in_schema, exprs)) = passthrough {
        for (j, (e, _)) in exprs.iter().enumerate() {
            if let Expr::Column(name) = e {
                if let Some(idx) = in_schema.index_of(name) {
                    dtypes[j] = Some(in_schema.column(idx).dtype);
                }
            }
        }
    }
    for row in rows {
        for (j, v) in row.iter().enumerate() {
            dtypes[j] = match (dtypes[j], DataType::of(v)) {
                (None, inferred) => inferred,
                (Some(cur), Some(d)) => DataType::unify(cur, d).or(Some(DataType::Str)),
                (cur @ Some(_), None) => cur,
            };
        }
    }
    let cols: Vec<Column> = names
        .into_iter()
        .zip(dtypes)
        .map(|(n, d)| Column::new(n, d.unwrap_or(DataType::Str)))
        .collect();
    Schema::new(cols)
}

fn exec_join(
    l: &Table,
    r: &Table,
    join_type: JoinType,
    on: &[(String, String)],
    limits: &ExecLimits,
) -> RelResult<Table> {
    if on.is_empty() {
        return Err(RelError::Plan("join requires at least one equality condition".into()));
    }
    let l_keys: Vec<usize> =
        on.iter().map(|(lc, _)| l.schema().require(lc)).collect::<RelResult<_>>()?;
    let r_keys: Vec<usize> =
        on.iter().map(|(_, rc)| r.schema().require(rc)).collect::<RelResult<_>>()?;

    // Build hash table on the smaller side? For determinism and simplicity,
    // always build on the right. Key extraction is the per-row hot loop and
    // fans out across the pool; insertion replays sequentially in row
    // order, so each bucket's row list is ordered exactly as before.
    let pool = parkit::global();
    let row_keys: Vec<Option<Vec<GroupKey>>> =
        pool.par_map_range_chunked(r.num_rows(), ROW_CHUNK, |j| {
            // NULL keys never join.
            if r_keys.iter().any(|&k| r.cell(j, k).is_null()) {
                return None;
            }
            Some(r_keys.iter().map(|&k| r.cell(j, k).group_key()).collect())
        });
    let mut index: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    for (j, key) in row_keys.into_iter().enumerate() {
        if let Some(key) = key {
            index.entry(key).or_default().push(j);
        }
    }

    // Join row budget: the exact output cardinality is a sum of bucket
    // sizes, computable before materializing a single output row. The
    // pre-pass costs one extra key extraction per left row, so it only runs
    // under a finite limit.
    if limits.max_join_rows != usize::MAX {
        let per_row: Vec<usize> = pool.par_map_range_chunked(l.num_rows(), ROW_CHUNK, |i| {
            if l_keys.iter().any(|&k| l.cell(i, k).is_null()) {
                return usize::from(join_type == JoinType::Left);
            }
            let key: Vec<GroupKey> = l_keys.iter().map(|&k| l.cell(i, k).group_key()).collect();
            match index.get(&key) {
                Some(js) => js.len(),
                None => usize::from(join_type == JoinType::Left),
            }
        });
        let mut total: usize = 0;
        for n in per_row {
            total = total.saturating_add(n);
            if total > limits.max_join_rows {
                return Err(RelError::ResourceExhausted {
                    what: "join output rows",
                    limit: limits.max_join_rows,
                });
            }
        }
    }

    let out_schema = l.schema().join(r.schema());
    let r_arity = r.schema().arity();
    // Parallel probe: each fixed-size span of left rows materializes its
    // output rows independently; spans concatenate in order, so the result
    // row order matches the sequential nested loop.
    let produced: Vec<Vec<Vec<Value>>> = pool.par_chunks_range(l.num_rows(), ROW_CHUNK, |range| {
        let mut rows = Vec::new();
        for i in range {
            let has_null_key = l_keys.iter().any(|&k| l.cell(i, k).is_null());
            let matches: Option<&Vec<usize>> = if has_null_key {
                None
            } else {
                let key: Vec<GroupKey> = l_keys.iter().map(|&k| l.cell(i, k).group_key()).collect();
                index.get(&key)
            };
            match matches {
                Some(js) => {
                    for &j in js {
                        let mut row = l.row(i);
                        row.extend(r.row(j));
                        rows.push(row);
                    }
                }
                None => {
                    if join_type == JoinType::Left {
                        let mut row = l.row(i);
                        row.extend(std::iter::repeat(Value::Null).take(r_arity));
                        rows.push(row);
                    }
                }
            }
        }
        rows
    });
    let mut out = Table::empty(out_schema);
    for row in produced.into_iter().flatten() {
        out.push_row(row)?;
    }
    Ok(out)
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(usize),
    CountDistinct(HashSet<GroupKey>),
    Sum { total: f64, seen: bool, all_int: bool, int_total: i64 },
    Avg { total: f64, n: usize },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(HashSet::new()),
            AggFunc::Sum => AggState::Sum { total: 0.0, seen: false, all_int: true, int_total: 0 },
            AggFunc::Avg => AggState::Avg { total: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> RelResult<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(expr) skips NULLs; COUNT(*) passes a literal.
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggState::CountDistinct(set) => {
                if !v.is_null() {
                    set.insert(v.group_key());
                }
            }
            AggState::Sum { total, seen, all_int, int_total } => {
                if !v.is_null() {
                    let x = v.as_f64().ok_or(RelError::TypeMismatch {
                        expected: "numeric",
                        found: v.type_name().to_string(),
                    })?;
                    *total += x;
                    *seen = true;
                    match v.as_i64() {
                        Some(i) => *int_total = int_total.wrapping_add(i),
                        None => *all_int = false,
                    }
                }
            }
            AggState::Avg { total, n } => {
                if !v.is_null() {
                    let x = v.as_f64().ok_or(RelError::TypeMismatch {
                        expected: "numeric",
                        found: v.type_name().to_string(),
                    })?;
                    *total += x;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if !v.is_null() {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.compare(c) == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if !v.is_null() {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.compare(c) == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::Sum { total, seen, all_int, int_total } => {
                if !seen {
                    Value::Null
                } else if all_int {
                    Value::Int(int_total)
                } else {
                    Value::float(total)
                }
            }
            AggState::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::float(total / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

fn exec_aggregate(t: &Table, group_by: &[(Expr, String)], aggs: &[AggExpr]) -> RelResult<Table> {
    let in_schema = t.schema().clone();
    // Group key -> (representative group values, agg states), insertion
    // order preserved for determinism.
    let mut order: Vec<Vec<GroupKey>> = Vec::new();
    let mut groups: HashMap<Vec<GroupKey>, (Vec<Value>, Vec<AggState>)> = HashMap::new();

    for i in 0..t.num_rows() {
        let row = t.row(i);
        let group_vals: RelResult<Vec<Value>> =
            group_by.iter().map(|(e, _)| e.eval(&row, &in_schema)).collect();
        let group_vals = group_vals?;
        let key: Vec<GroupKey> = group_vals.iter().map(Value::group_key).collect();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (group_vals, aggs.iter().map(|a| AggState::new(a.func)).collect())
        });
        for (a, st) in aggs.iter().zip(entry.1.iter_mut()) {
            let v = a.input.eval(&row, &in_schema)?;
            st.update(&v)?;
        }
    }

    // Global aggregate over an empty input still yields one row.
    if group_by.is_empty() && groups.is_empty() {
        let states: Vec<AggState> = aggs.iter().map(|a| AggState::new(a.func)).collect();
        let key: Vec<GroupKey> = Vec::new();
        order.push(key.clone());
        groups.insert(key, (Vec::new(), states));
    }

    let names: Vec<String> = group_by
        .iter()
        .map(|(_, n)| n.clone())
        .chain(aggs.iter().map(|a| a.output_name.clone()))
        .collect();
    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let Some((vals, states)) = groups.remove(&key) else {
            return Err(RelError::Plan("aggregate group lost during finalization".into()));
        };
        let mut row = vals;
        row.extend(states.into_iter().map(AggState::finish));
        rows.push(row);
    }
    let schema = infer_schema(names, &rows, None)?;
    Table::from_rows(schema, rows)
}

fn exec_sort(t: &Table, keys: &[SortKey]) -> RelResult<Table> {
    let schema = t.schema().clone();
    // Precompute key values per row (decorate-sort-undecorate); the key
    // evaluation fans out over fixed-size row spans merged in row order.
    let evaluated: Vec<RelResult<Vec<Value>>> =
        parkit::global().par_map_range_chunked(t.num_rows(), ROW_CHUNK, |i| {
            let row = t.row(i);
            keys.iter().map(|k| k.expr.eval(&row, &schema)).collect()
        });
    let mut decorated: Vec<(Vec<Value>, usize)> = Vec::with_capacity(t.num_rows());
    for (i, kv) in evaluated.into_iter().enumerate() {
        decorated.push((kv?, i));
    }
    decorated.sort_by(|(ka, ia), (kb, ib)| {
        for (k, (va, vb)) in keys.iter().zip(ka.iter().zip(kb.iter())) {
            let ord = va.sort_cmp(vb);
            let ord = if k.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        ia.cmp(ib) // stable
    });
    let indices: Vec<usize> = decorated.into_iter().map(|(_, i)| i).collect();
    Ok(t.take(&indices))
}

fn exec_distinct(t: &Table) -> RelResult<Table> {
    let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
    let mut keep = Vec::new();
    for i in 0..t.num_rows() {
        let key: Vec<GroupKey> = t.row(i).iter().map(Value::group_key).collect();
        if seen.insert(key) {
            keep.push(i);
        }
    }
    Ok(t.take(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        let sales = Table::from_rows(
            Schema::of(&[
                ("product", DataType::Str),
                ("quarter", DataType::Str),
                ("amount", DataType::Float),
                ("units", DataType::Int),
            ]),
            vec![
                vec![Value::str("alpha"), Value::str("Q1"), Value::Float(100.0), Value::Int(10)],
                vec![Value::str("alpha"), Value::str("Q2"), Value::Float(150.0), Value::Int(15)],
                vec![Value::str("beta"), Value::str("Q1"), Value::Float(80.0), Value::Int(8)],
                vec![Value::str("beta"), Value::str("Q2"), Value::Float(60.0), Value::Int(6)],
                vec![Value::str("gamma"), Value::str("Q2"), Value::Null, Value::Int(3)],
            ],
        )
        .unwrap();
        db.create_table("sales", sales).unwrap();
        let products = Table::from_rows(
            Schema::of(&[("name", DataType::Str), ("maker", DataType::Str)]),
            vec![
                vec![Value::str("alpha"), Value::str("Acme")],
                vec![Value::str("beta"), Value::str("Initech")],
            ],
        )
        .unwrap();
        db.create_table("products", products).unwrap();
        db
    }

    #[test]
    fn scan_returns_table() {
        let d = db();
        let t = execute(&LogicalPlan::scan("sales"), &d).unwrap();
        assert_eq!(t.num_rows(), 5);
        assert!(execute(&LogicalPlan::scan("nope"), &d).is_err());
    }

    #[test]
    fn filter_drops_nonmatching_and_null() {
        let d = db();
        let plan = LogicalPlan::scan("sales").filter(Expr::col("amount").gt(Expr::lit(90.0)));
        let t = execute(&plan, &d).unwrap();
        // gamma's NULL amount must not pass.
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn project_computes_and_renames() {
        let d = db();
        let plan = LogicalPlan::scan("sales").project(vec![
            (Expr::col("product"), "p".to_string()),
            (Expr::col("amount").binary_div_test(Expr::col("units")), "unit_price".to_string()),
        ]);
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.schema().index_of("unit_price"), Some(1));
        assert_eq!(t.cell(0, 1), &Value::Float(10.0));
    }

    #[test]
    fn inner_join_matches() {
        let d = db();
        let plan = LogicalPlan::scan("sales")
            .join(LogicalPlan::scan("products"), vec![("product".to_string(), "name".to_string())]);
        let t = execute(&plan, &d).unwrap();
        // gamma has no product row → dropped. 2+2 remain.
        assert_eq!(t.num_rows(), 4);
        assert!(t.schema().index_of("maker").is_some());
    }

    #[test]
    fn left_join_pads_nulls() {
        let d = db();
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("sales")),
            right: Box::new(LogicalPlan::scan("products")),
            join_type: JoinType::Left,
            on: vec![("product".to_string(), "name".to_string())],
        };
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.num_rows(), 5);
        let maker_idx = t.schema().index_of("maker").unwrap();
        let gamma_row = (0..t.num_rows()).find(|&i| t.cell(i, 0) == &Value::str("gamma")).unwrap();
        assert!(t.cell(gamma_row, maker_idx).is_null());
    }

    #[test]
    fn join_null_keys_never_match() {
        let mut d = Database::new();
        let a = Table::from_rows(
            Schema::of(&[("k", DataType::Str)]),
            vec![vec![Value::Null], vec![Value::str("x")]],
        )
        .unwrap();
        let b = Table::from_rows(
            Schema::of(&[("k2", DataType::Str)]),
            vec![vec![Value::Null], vec![Value::str("x")]],
        )
        .unwrap();
        d.create_table("a", a).unwrap();
        d.create_table("b", b).unwrap();
        let plan = LogicalPlan::scan("a")
            .join(LogicalPlan::scan("b"), vec![("k".to_string(), "k2".to_string())]);
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn aggregate_group_by() {
        let d = db();
        let plan = LogicalPlan::scan("sales").aggregate(
            vec![(Expr::col("product"), "product".to_string())],
            vec![
                AggExpr {
                    func: AggFunc::Sum,
                    input: Expr::col("amount"),
                    output_name: "total".to_string(),
                },
                AggExpr {
                    func: AggFunc::Count,
                    input: Expr::lit(1i64),
                    output_name: "n".to_string(),
                },
            ],
        );
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.num_rows(), 3);
        let alpha = (0..3).find(|&i| t.cell(i, 0) == &Value::str("alpha")).unwrap();
        assert_eq!(t.cell(alpha, 1), &Value::Float(250.0));
        assert_eq!(t.cell(alpha, 2), &Value::Int(2));
        // gamma: SUM of only-NULL amounts is NULL.
        let gamma = (0..3).find(|&i| t.cell(i, 0) == &Value::str("gamma")).unwrap();
        assert!(t.cell(gamma, 1).is_null());
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let mut d = Database::new();
        d.create_table("e", Table::empty(Schema::of(&[("x", DataType::Int)]))).unwrap();
        let plan = LogicalPlan::scan("e").aggregate(
            vec![],
            vec![AggExpr {
                func: AggFunc::Count,
                input: Expr::lit(1i64),
                output_name: "n".to_string(),
            }],
        );
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.cell(0, 0), &Value::Int(0));
    }

    #[test]
    fn avg_min_max_count_distinct() {
        let d = db();
        let plan = LogicalPlan::scan("sales").aggregate(
            vec![],
            vec![
                AggExpr { func: AggFunc::Avg, input: Expr::col("units"), output_name: "a".into() },
                AggExpr { func: AggFunc::Min, input: Expr::col("units"), output_name: "mn".into() },
                AggExpr { func: AggFunc::Max, input: Expr::col("units"), output_name: "mx".into() },
                AggExpr {
                    func: AggFunc::CountDistinct,
                    input: Expr::col("quarter"),
                    output_name: "q".into(),
                },
            ],
        );
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.cell(0, 0), &Value::Float(8.4));
        assert_eq!(t.cell(0, 1), &Value::Int(3));
        assert_eq!(t.cell(0, 2), &Value::Int(15));
        assert_eq!(t.cell(0, 3), &Value::Int(2));
    }

    #[test]
    fn sum_of_ints_stays_int() {
        let d = db();
        let plan = LogicalPlan::scan("sales").aggregate(
            vec![],
            vec![AggExpr {
                func: AggFunc::Sum,
                input: Expr::col("units"),
                output_name: "s".into(),
            }],
        );
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.cell(0, 0), &Value::Int(42));
    }

    #[test]
    fn sort_orders_and_is_stable() {
        let d = db();
        let plan = LogicalPlan::scan("sales")
            .sort(vec![SortKey { expr: Expr::col("quarter"), ascending: true }]);
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.cell(0, 1), &Value::str("Q1"));
        // Stability: alpha Q1 (row 0 originally) before beta Q1.
        assert_eq!(t.cell(0, 0), &Value::str("alpha"));
        assert_eq!(t.cell(1, 0), &Value::str("beta"));
    }

    #[test]
    fn sort_descending_nulls() {
        let d = db();
        let plan = LogicalPlan::scan("sales")
            .sort(vec![SortKey { expr: Expr::col("amount"), ascending: false }]);
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.cell(0, 2), &Value::Float(150.0));
        // NULL sorts first ascending → last descending.
        assert!(t.cell(4, 2).is_null());
    }

    #[test]
    fn limit_caps() {
        let d = db();
        let t = execute(&LogicalPlan::scan("sales").limit(2), &d).unwrap();
        assert_eq!(t.num_rows(), 2);
        let t = execute(&LogicalPlan::scan("sales").limit(100), &d).unwrap();
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn distinct_dedups() {
        let d = db();
        let plan = LogicalPlan::scan("sales")
            .project(vec![(Expr::col("quarter"), "q".to_string())])
            .distinct();
        let t = execute(&plan, &d).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn join_row_budget_trips_deterministically() {
        let d = db();
        let plan = LogicalPlan::scan("sales")
            .join(LogicalPlan::scan("products"), vec![("product".to_string(), "name".to_string())]);
        // The inner join yields 4 rows: a budget of 3 must trip, 4 must not.
        let tight = ExecLimits { max_join_rows: 3 };
        assert!(matches!(
            execute_with_limits(&plan, &d, &tight),
            Err(RelError::ResourceExhausted { what: "join output rows", limit: 3 })
        ));
        let exact = ExecLimits { max_join_rows: 4 };
        assert_eq!(execute_with_limits(&plan, &d, &exact).unwrap().num_rows(), 4);
        // Left joins count the NULL-padded rows too (5 total here).
        let left = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("sales")),
            right: Box::new(LogicalPlan::scan("products")),
            join_type: JoinType::Left,
            on: vec![("product".to_string(), "name".to_string())],
        };
        assert!(execute_with_limits(&left, &d, &exact).is_err());
        assert_eq!(
            execute_with_limits(&left, &d, &ExecLimits { max_join_rows: 5 }).unwrap().num_rows(),
            5
        );
    }

    #[test]
    fn exec_stats_count_scans_and_join_output() {
        let d = db();
        let plan = LogicalPlan::scan("sales")
            .join(LogicalPlan::scan("products"), vec![("product".to_string(), "name".to_string())]);
        let (result, stats) = execute_with_limits_stats(&plan, &d, &ExecLimits::default());
        assert_eq!(result.unwrap().num_rows(), 4);
        assert_eq!(stats.rows_scanned, 7, "5 sales rows + 2 product rows");
        assert_eq!(stats.rows_joined, 4);
        // Counters survive a budget trip: both scans ran before the join
        // budget pre-pass rejected the output.
        let (result, stats) =
            execute_with_limits_stats(&plan, &d, &ExecLimits { max_join_rows: 3 });
        assert!(result.is_err());
        assert_eq!(stats.rows_scanned, 7);
        assert_eq!(stats.rows_joined, 0);
        let mut acc = ExecStats::default();
        acc.merge(stats);
        acc.merge(ExecStats { rows_scanned: 1, rows_joined: 2 });
        assert_eq!(acc, ExecStats { rows_scanned: 8, rows_joined: 2 });
    }

    #[test]
    fn join_requires_condition() {
        let d = db();
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::scan("sales")),
            right: Box::new(LogicalPlan::scan("products")),
            join_type: JoinType::Inner,
            on: vec![],
        };
        assert!(execute(&plan, &d).is_err());
    }
}

#[cfg(test)]
impl Expr {
    /// Test-only shorthand for division.
    fn binary_div_test(self, other: Expr) -> Expr {
        Expr::Binary { op: crate::expr::BinOp::Div, left: Box::new(self), right: Box::new(other) }
    }
}
