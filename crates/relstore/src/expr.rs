//! Scalar expressions: AST and row-at-a-time evaluator.
//!
//! Comparison and logic follow SQL three-valued semantics: any comparison
//! with NULL yields NULL, `AND`/`OR` propagate unknowns, and `WHERE` treats
//! NULL as false (enforced by the executor, not here).

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (numeric) or string concatenation.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float result; division by zero is an error).
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
}

impl BinOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by name (resolved against the schema at eval).
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation (three-valued).
    Not(Box<Expr>),
    /// `expr IS NULL` (or `IS NOT NULL` when `negated`).
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// SQL LIKE with `%` and `_` wildcards (case-insensitive).
    Like {
        /// The tested expression (must evaluate to a string or NULL).
        expr: Box<Expr>,
        /// The pattern.
        pattern: String,
    },
    /// `expr IN (v1, v2, …)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Value>,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        self.binary(BinOp::Ne, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinOp::Gt, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        self.binary(BinOp::Ge, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinOp::Lt, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        self.binary(BinOp::Le, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinOp::Or, other)
    }

    fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(self), right: Box::new(other) }
    }

    /// Evaluates against one row.
    pub fn eval(&self, row: &[Value], schema: &Schema) -> RelResult<Value> {
        match self {
            Expr::Column(name) => {
                let idx = schema.require(name)?;
                Ok(row[idx].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                let l = left.eval(row, schema)?;
                // Short-circuit three-valued AND/OR.
                match op {
                    BinOp::And => {
                        if l == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = right.eval(row, schema)?;
                        return three_valued_and(&l, &r);
                    }
                    BinOp::Or => {
                        if l == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = right.eval(row, schema)?;
                        return three_valued_or(&l, &r);
                    }
                    _ => {}
                }
                let r = right.eval(row, schema)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Not(inner) => match inner.eval(row, schema)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(RelError::TypeMismatch {
                    expected: "bool",
                    found: other.type_name().to_string(),
                }),
            },
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row, schema)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like { expr, pattern } => match expr.eval(row, schema)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern))),
                other => Err(RelError::TypeMismatch {
                    expected: "str",
                    found: other.type_name().to_string(),
                }),
            },
            Expr::InList { expr, list } => {
                let v = expr.eval(row, schema)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for cand in list {
                    match v.sql_eq(cand) {
                        Some(true) => return Ok(Value::Bool(true)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(false) })
            }
        }
    }

    /// All column names referenced by this expression.
    pub fn columns_referenced(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(n) => {
                out.insert(n.to_lowercase());
            }
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::InList { expr, .. } => expr.collect_columns(out),
        }
    }

    /// True when the expression references no columns (a constant).
    pub fn is_constant(&self) -> bool {
        self.columns_referenced().is_empty()
    }
}

fn bool_or_null(v: &Value) -> RelResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => {
            Err(RelError::TypeMismatch { expected: "bool", found: other.type_name().to_string() })
        }
    }
}

fn three_valued_and(l: &Value, r: &Value) -> RelResult<Value> {
    Ok(match (bool_or_null(l)?, bool_or_null(r)?) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn three_valued_or(l: &Value, r: &Value) -> RelResult<Value> {
    Ok(match (bool_or_null(l)?, bool_or_null(r)?) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

/// Evaluates a non-logical binary operator on two values.
pub fn eval_binary(op: BinOp, l: &Value, r: &Value) -> RelResult<Value> {
    if op.is_comparison() {
        return Ok(match l.compare(r) {
            None => Value::Null,
            Some(ord) => Value::Bool(match op {
                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                BinOp::Ne => ord != std::cmp::Ordering::Equal,
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::Le => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::Ge => ord != std::cmp::Ordering::Less,
                other => {
                    return Err(RelError::Plan(format!(
                        "eval_binary: operator {other:?} classified as comparison but not \
                         handled"
                    )))
                }
            }),
        });
    }
    if matches!(op, BinOp::And | BinOp::Or) {
        return three_valued_logic(op, l, r);
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Add => match (l, r) {
            (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            _ => numeric_op(l, r, |a, b| a + b),
        },
        BinOp::Sub => match (l, r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            _ => numeric_op(l, r, |a, b| a - b),
        },
        BinOp::Mul => match (l, r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            _ => numeric_op(l, r, |a, b| a * b),
        },
        BinOp::Div => {
            let b = r.as_f64().ok_or_else(|| type_err(r))?;
            if b == 0.0 {
                return Err(RelError::DivisionByZero);
            }
            let a = l.as_f64().ok_or_else(|| type_err(l))?;
            Ok(Value::float(a / b))
        }
        // Comparisons and logical ops were handled above; a typed error
        // keeps a future operator addition from panicking query execution.
        other => Err(RelError::Plan(format!("eval_binary: unhandled operator {other:?}"))),
    }
}

/// Stand-alone three-valued AND/OR used when `eval_binary` is called outside
/// the short-circuiting evaluator (e.g. constant folding).
fn three_valued_logic(op: BinOp, l: &Value, r: &Value) -> RelResult<Value> {
    match op {
        BinOp::And => three_valued_and(l, r),
        BinOp::Or => three_valued_or(l, r),
        other => Err(RelError::Plan(format!("three_valued_logic: non-logical operator {other:?}"))),
    }
}

fn numeric_op(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> RelResult<Value> {
    let a = l.as_f64().ok_or_else(|| type_err(l))?;
    let b = r.as_f64().ok_or_else(|| type_err(r))?;
    Ok(Value::float(f(a, b)))
}

fn type_err(v: &Value) -> RelError {
    RelError::TypeMismatch { expected: "numeric", found: v.type_name().to_string() }
}

/// SQL LIKE matching: `%` = any run, `_` = any single char; case-insensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try matching % against every suffix.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    rec(&s, &p)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(n) => write!(f, "{n}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, left, right } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({left} {sym} {right})")
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, pattern } => write!(f, "({expr} LIKE '{pattern}')"),
            Expr::InList { expr, list } => {
                let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
                write!(f, "({expr} IN ({}))", items.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn schema() -> Schema {
        Schema::of(&[("a", DataType::Int), ("b", DataType::Float), ("s", DataType::Str)])
    }

    fn row() -> Vec<Value> {
        vec![Value::Int(10), Value::Float(2.5), Value::str("Widget")]
    }

    #[test]
    fn column_and_literal() {
        let s = schema();
        assert_eq!(Expr::col("a").eval(&row(), &s).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(5i64).eval(&row(), &s).unwrap(), Value::Int(5));
        assert!(Expr::col("zz").eval(&row(), &s).is_err());
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let e = Expr::col("a").binary(BinOp::Add, Expr::lit(5i64));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Int(15));
        let e = Expr::col("a").binary(BinOp::Mul, Expr::col("b"));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Float(25.0));
        let e = Expr::col("a").binary(BinOp::Div, Expr::lit(4i64));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn division_by_zero() {
        let s = schema();
        let e = Expr::col("a").binary(BinOp::Div, Expr::lit(0i64));
        assert_eq!(e.eval(&row(), &s), Err(RelError::DivisionByZero));
    }

    #[test]
    fn string_concat() {
        let s = schema();
        let e = Expr::col("s").binary(BinOp::Add, Expr::lit("!"));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::str("Widget!"));
    }

    #[test]
    fn comparisons() {
        let s = schema();
        assert_eq!(Expr::col("a").gt(Expr::lit(5i64)).eval(&row(), &s).unwrap(), Value::Bool(true));
        assert_eq!(
            Expr::col("a").le(Expr::lit(5i64)).eval(&row(), &s).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::col("a").eq(Expr::lit(10.0)).eval(&row(), &s).unwrap(),
            Value::Bool(true),
            "numeric coercion in comparison"
        );
    }

    #[test]
    fn null_propagation() {
        let s = schema();
        let e = Expr::lit(Value::Null).eq(Expr::lit(1i64));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Null);
        let e = Expr::lit(Value::Null).binary(BinOp::Add, Expr::lit(1i64));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        let null = || Expr::lit(Value::Null);
        let t = || Expr::lit(true);
        let f = || Expr::lit(false);
        assert_eq!(f().and(null()).eval(&row(), &s).unwrap(), Value::Bool(false));
        assert_eq!(t().and(null()).eval(&row(), &s).unwrap(), Value::Null);
        assert_eq!(t().or(null()).eval(&row(), &s).unwrap(), Value::Bool(true));
        assert_eq!(f().or(null()).eval(&row(), &s).unwrap(), Value::Null);
        assert_eq!(Expr::Not(Box::new(null())).eval(&row(), &s).unwrap(), Value::Null);
    }

    #[test]
    fn short_circuit_skips_errors() {
        let s = schema();
        // false AND (1/0) must not error.
        let div0 = Expr::lit(1i64).binary(BinOp::Div, Expr::lit(0i64));
        let e = Expr::lit(false).and(div0.clone().eq(Expr::lit(1i64)));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Bool(false));
        let e = Expr::lit(true).or(div0.eq(Expr::lit(1i64)));
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Bool(true));
    }

    #[test]
    fn is_null() {
        let s = schema();
        let e = Expr::IsNull { expr: Box::new(Expr::lit(Value::Null)), negated: false };
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Bool(true));
        let e = Expr::IsNull { expr: Box::new(Expr::col("a")), negated: true };
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("widget", "wid%"));
        assert!(like_match("widget", "%get"));
        assert!(like_match("widget", "w_dget"));
        assert!(like_match("Widget", "widget"));
        assert!(!like_match("widget", "gadget%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%b%"));
    }

    #[test]
    fn like_expr() {
        let s = schema();
        let e = Expr::Like { expr: Box::new(Expr::col("s")), pattern: "wid%".into() };
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_semantics() {
        let s = schema();
        let e = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Value::Int(1), Value::Int(10)],
        };
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Bool(true));
        let e =
            Expr::InList { expr: Box::new(Expr::col("a")), list: vec![Value::Int(1), Value::Null] };
        // 10 ∉ {1, NULL} is NULL, not false (SQL semantics).
        assert_eq!(e.eval(&row(), &s).unwrap(), Value::Null);
    }

    #[test]
    fn columns_referenced_and_constant() {
        let e = Expr::col("A").and(Expr::col("b").gt(Expr::lit(1i64)));
        let cols = e.columns_referenced();
        assert!(cols.contains("a") && cols.contains("b"));
        assert!(!e.is_constant());
        assert!(Expr::lit(1i64).eq(Expr::lit(2i64)).is_constant());
    }

    #[test]
    fn display_roundtrip_reads() {
        let e = Expr::col("a").gt(Expr::lit(5i64)).and(Expr::col("s").eq(Expr::lit("x")));
        let shown = e.to_string();
        assert!(shown.contains("a > 5"));
        assert!(shown.contains("'x'"));
    }
}
