//! Typed values: the cell type of the engine.

use std::cmp::Ordering;
use std::fmt;

/// A calendar date (proleptic Gregorian, no time component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year (e.g. 2024).
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31.
    pub day: u8,
}

impl Date {
    /// Creates a date, validating month/day ranges (not month lengths).
    pub fn new(year: i32, month: u8, day: u8) -> Option<Self> {
        ((1..=12).contains(&month) && (1..=31).contains(&day)).then_some(Self { year, month, day })
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u8 = parts.next()?.parse().ok()?;
        let day: u8 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Self::new(year, month, day)
    }

    /// Days since 0000-03-01 (a standard civil-date encoding); gives a total
    /// order and arithmetic-friendly representation.
    pub fn to_ordinal(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (i64::from(self.month) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe
    }

    /// The fiscal quarter (1–4) this date falls in.
    pub fn quarter(self) -> u8 {
        (self.month - 1) / 3 + 1
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A typed cell value.
///
/// `Float` uses `f64`; NaN never enters tables (constructors and parsers
/// reject it), so the `PartialOrd`-based comparisons used by sorting are
/// total in practice.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (never NaN).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Creates a float value; NaN is mapped to `Null`.
    pub fn float(f: f64) -> Self {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Float(f)
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats as f64; others `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats are not coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// The [`crate::schema::DataType`] name of this value, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Date(_) => "date",
        }
    }

    /// SQL-style three-valued comparison.
    ///
    /// Returns `None` when either side is NULL or the types are
    /// incomparable. Ints and floats compare numerically.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order for sorting: NULLs first, then by type, then by value.
    ///
    /// Unlike [`Self::compare`], this never returns `None`, which makes it
    /// usable as a sort comparator over heterogeneous columns.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn type_rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Date(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match self.compare(other) {
            Some(o) => o,
            None => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                _ => type_rank(self).cmp(&type_rank(other)).then_with(|| {
                    // Same rank but incomparable can only be NaN-free float
                    // vs int edge handled above; fall back to display.
                    self.to_string().cmp(&other.to_string())
                }),
            },
        }
    }

    /// Parses a string into the most specific value type:
    /// NULL/bool/int/float/date, falling back to `Str`.
    pub fn infer_parse(s: &str) -> Value {
        let t = s.trim();
        if t.is_empty() || t.eq_ignore_ascii_case("null") {
            return Value::Null;
        }
        if t.eq_ignore_ascii_case("true") {
            return Value::Bool(true);
        }
        if t.eq_ignore_ascii_case("false") {
            return Value::Bool(false);
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            if !f.is_nan() {
                return Value::Float(f);
            }
        }
        if let Some(d) = Date::parse(t) {
            return Value::Date(d);
        }
        Value::Str(t.to_string())
    }

    /// Equality with numeric coercion and NULL ≠ NULL (SQL semantics).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }

    /// A hashable group-by key form. Floats are keyed by bit pattern of
    /// their canonicalized value (−0.0 → 0.0).
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Int(*i),
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                // Integral floats group with equal ints (numeric equality).
                if f.fract() == 0.0 && f.abs() < 9e15 {
                    GroupKey::Int(f as i64)
                } else {
                    GroupKey::FloatBits(f.to_bits())
                }
            }
            Value::Str(s) => GroupKey::Str(s.clone()),
            Value::Date(d) => GroupKey::Date(*d),
        }
    }
}

/// Hashable key for grouping and join probing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// NULL key (groups with other NULLs, per GROUP BY semantics).
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key (integral floats normalize here).
    Int(i64),
    /// Non-integral float, keyed by bits.
    FloatBits(u64),
    /// String key.
    Str(String),
    /// Date key.
    Date(Date),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parse_and_display() {
        let d = Date::parse("2024-03-05").unwrap();
        assert_eq!(d.to_string(), "2024-03-05");
        assert!(Date::parse("2024-13-05").is_none());
        assert!(Date::parse("2024-03").is_none());
        assert!(Date::parse("garbage").is_none());
    }

    #[test]
    fn date_ordinal_monotonic() {
        let a = Date::parse("2024-02-28").unwrap();
        let b = Date::parse("2024-02-29").unwrap();
        let c = Date::parse("2024-03-01").unwrap();
        assert_eq!(a.to_ordinal() + 1, b.to_ordinal());
        assert_eq!(b.to_ordinal() + 1, c.to_ordinal());
    }

    #[test]
    fn date_quarters() {
        assert_eq!(Date::new(2024, 1, 15).unwrap().quarter(), 1);
        assert_eq!(Date::new(2024, 6, 30).unwrap().quarter(), 2);
        assert_eq!(Date::new(2024, 12, 1).unwrap().quarter(), 4);
    }

    #[test]
    fn compare_numeric_coercion() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)), Some(Ordering::Less));
    }

    #[test]
    fn compare_null_is_none() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Null.compare(&Value::Null), None);
    }

    #[test]
    fn compare_cross_type_none() {
        assert_eq!(Value::str("a").compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn sort_cmp_total() {
        let mut vals = vec![
            Value::str("b"),
            Value::Null,
            Value::Int(5),
            Value::Float(2.5),
            Value::Bool(true),
            Value::str("a"),
        ];
        vals.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals.last().unwrap(), &Value::str("b"));
    }

    #[test]
    fn infer_parse_types() {
        assert_eq!(Value::infer_parse("42"), Value::Int(42));
        assert_eq!(Value::infer_parse("-3.5"), Value::Float(-3.5));
        assert_eq!(Value::infer_parse("true"), Value::Bool(true));
        assert_eq!(Value::infer_parse("2024-01-02"), Value::Date(Date::new(2024, 1, 2).unwrap()));
        assert_eq!(Value::infer_parse(""), Value::Null);
        assert_eq!(Value::infer_parse("NULL"), Value::Null);
        assert_eq!(Value::infer_parse("hello"), Value::str("hello"));
    }

    #[test]
    fn nan_never_enters() {
        assert_eq!(Value::float(f64::NAN), Value::Null);
        assert_eq!(Value::from(f64::NAN), Value::Null);
    }

    #[test]
    fn group_key_numeric_unification() {
        assert_eq!(Value::Int(3).group_key(), Value::Float(3.0).group_key());
        assert_ne!(Value::Int(3).group_key(), Value::Float(3.5).group_key());
        assert_eq!(Value::Float(0.0).group_key(), Value::Float(-0.0).group_key());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::str("x").to_string(), "x");
    }

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }
}
