//! Schemas: named, typed columns.

use std::collections::HashMap;
use std::fmt;

use crate::error::{RelError, RelResult};
use crate::value::Value;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date.
    Date,
}

impl DataType {
    /// Whether `value` is admissible in a column of this type.
    ///
    /// NULL is admissible everywhere; ints are admissible in float columns
    /// (widening).
    pub fn admits(self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Int, Value::Int(_)) => true,
            (DataType::Float, Value::Float(_) | Value::Int(_)) => true,
            (DataType::Str, Value::Str(_)) => true,
            (DataType::Date, Value::Date(_)) => true,
            _ => false,
        }
    }

    /// The most specific type admitting a value (`None` for NULL).
    pub fn of(value: &Value) -> Option<DataType> {
        match value {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// The narrowest common supertype of two types, if any.
    ///
    /// Int and Float unify to Float; everything else must match exactly.
    pub fn unify(a: DataType, b: DataType) -> Option<DataType> {
        if a == b {
            return Some(a);
        }
        match (a, b) {
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                Some(DataType::Float)
            }
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Date => "DATE",
        };
        write!(f, "{s}")
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (matched case-insensitively in SQL).
    pub name: String,
    /// Data type.
    pub dtype: DataType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self { name: name.into(), dtype }
    }
}

/// An ordered set of columns with O(1) name lookup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema; duplicate names (case-insensitive) are an error.
    pub fn new(columns: Vec<Column>) -> RelResult<Self> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.to_lowercase(), i).is_some() {
                return Err(RelError::Conflict(format!("duplicate column name: {}", c.name)));
            }
        }
        Ok(Self { columns, by_name })
    }

    /// Builds a schema from `(name, type)` pairs; panics on duplicates.
    ///
    /// Intended for tests and embedded literals where duplicates are bugs.
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        match Self::new(pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect()) {
            Ok(s) => s,
            // udlint: allow(unwrap-in-core) -- documented test/literal convenience; duplicate columns in an embedded literal are a programming bug, and the fallible path is Schema::new
            Err(e) => panic!("Schema::of: {e}"),
        }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive index lookup.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(&name.to_lowercase()).copied()
    }

    /// Like [`Self::index_of`] but returns an error naming the column.
    pub fn require(&self, name: &str) -> RelResult<usize> {
        self.index_of(name).ok_or_else(|| RelError::UnknownColumn(name.to_string()))
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Concatenates two schemas (for joins), disambiguating duplicate names
    /// by prefixing `right.` on the right side until the name is unique
    /// (so a right column literally named `right.x` cannot collide).
    pub fn join(&self, right: &Schema) -> Schema {
        let columns = {
            let mut cols = self.columns.clone();
            let mut taken: std::collections::HashSet<String> =
                cols.iter().map(|c| c.name.to_lowercase()).collect();
            for c in right.columns() {
                let mut name = c.name.clone();
                while taken.contains(&name.to_lowercase()) {
                    name = format!("right.{name}");
                }
                taken.insert(name.to_lowercase());
                cols.push(Column::new(name, c.dtype));
            }
            cols
        };
        // Uniqueness is guaranteed by the loop above, so the index can be
        // built without the fallible constructor.
        let by_name = columns.iter().enumerate().map(|(i, c)| (c.name.to_lowercase(), i)).collect();
        Schema { columns, by_name }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> =
            self.columns.iter().map(|c| format!("{} {}", c.name, c.dtype)).collect();
        write!(f, "({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Date;

    #[test]
    fn admits_matrix() {
        assert!(DataType::Int.admits(&Value::Int(1)));
        assert!(DataType::Float.admits(&Value::Int(1)));
        assert!(!DataType::Int.admits(&Value::Float(1.0)));
        assert!(DataType::Str.admits(&Value::Null));
        assert!(!DataType::Date.admits(&Value::str("2024-01-01")));
        assert!(DataType::Date.admits(&Value::Date(Date::new(2024, 1, 1).unwrap())));
    }

    #[test]
    fn unify_rules() {
        assert_eq!(DataType::unify(DataType::Int, DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::unify(DataType::Str, DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::unify(DataType::Str, DataType::Int), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![Column::new("a", DataType::Int), Column::new("A", DataType::Str)]);
        assert!(matches!(r, Err(RelError::Conflict(_))));
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = Schema::of(&[("Sales", DataType::Float), ("quarter", DataType::Str)]);
        assert_eq!(s.index_of("sales"), Some(0));
        assert_eq!(s.index_of("QUARTER"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.require("missing").is_err());
    }

    #[test]
    fn join_disambiguates() {
        let l = Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]);
        let r = Schema::of(&[("id", DataType::Int), ("price", DataType::Float)]);
        let j = l.join(&r);
        assert_eq!(j.arity(), 4);
        assert!(j.index_of("right.id").is_some());
        assert!(j.index_of("price").is_some());
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }
}
