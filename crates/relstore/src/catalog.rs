//! The database catalog: named tables plus the `run_sql` entry point.

use std::collections::BTreeMap;

use crate::error::{RelError, RelResult};
use crate::exec::{execute, execute_with_limits, execute_with_limits_stats, ExecLimits, ExecStats};
use crate::optimize::optimize;
use crate::plan::LogicalPlan;
use crate::sql;
use crate::table::Table;

/// An in-memory database: a catalog of named tables.
///
/// Table names are case-insensitive. Iteration order is alphabetical
/// (BTreeMap), keeping catalog dumps deterministic.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table; the name must be new.
    pub fn create_table(&mut self, name: &str, table: Table) -> RelResult<()> {
        let key = name.to_lowercase();
        if self.tables.contains_key(&key) {
            return Err(RelError::Conflict(format!("table already exists: {name}")));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Registers or replaces a table.
    pub fn create_or_replace_table(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_lowercase(), table);
    }

    /// Removes a table, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(&name.to_lowercase())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> RelResult<&Table> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// True when `name` is registered.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_lowercase())
    }

    /// All table names, alphabetical.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total approximate resident bytes across all tables.
    pub fn approx_bytes(&self) -> usize {
        self.tables.values().map(Table::approx_bytes).sum()
    }

    /// Executes a logical plan (after optimization).
    pub fn run_plan(&self, plan: &LogicalPlan) -> RelResult<Table> {
        let optimized = optimize(plan.clone());
        execute(&optimized, self)
    }

    /// Executes a logical plan (after optimization) under resource
    /// governors; a tripped governor surfaces as
    /// [`RelError::ResourceExhausted`].
    pub fn run_plan_with_limits(
        &self,
        plan: &LogicalPlan,
        limits: &ExecLimits,
    ) -> RelResult<Table> {
        let optimized = optimize(plan.clone());
        execute_with_limits(&optimized, self, limits)
    }

    /// [`Self::run_plan_with_limits`] plus deterministic work counters
    /// ([`ExecStats`]); the counters are valid even when execution fails.
    pub fn run_plan_with_limits_stats(
        &self,
        plan: &LogicalPlan,
        limits: &ExecLimits,
    ) -> (RelResult<Table>, ExecStats) {
        let optimized = optimize(plan.clone());
        execute_with_limits_stats(&optimized, self, limits)
    }

    /// Parses, plans, optimizes, and executes a SQL query.
    ///
    /// ```
    /// use unisem_relstore::{Database, Schema, Table, DataType, Value};
    /// let mut db = Database::new();
    /// let t = Table::from_rows(
    ///     Schema::of(&[("x", DataType::Int)]),
    ///     vec![vec![Value::Int(1)], vec![Value::Int(5)]],
    /// ).unwrap();
    /// db.create_table("nums", t).unwrap();
    /// let out = db.run_sql("SELECT x FROM nums WHERE x > 2").unwrap();
    /// assert_eq!(out.num_rows(), 1);
    /// ```
    pub fn run_sql(&self, query: &str) -> RelResult<Table> {
        let plan = sql::plan_sql(query)?;
        self.run_plan(&plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::value::Value;

    fn nums() -> Table {
        Table::from_rows(
            Schema::of(&[("x", DataType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_table("T", nums()).unwrap();
        assert!(db.has_table("t"));
        assert!(db.table("T").is_ok());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut db = Database::new();
        db.create_table("t", nums()).unwrap();
        assert!(matches!(db.create_table("T", nums()), Err(RelError::Conflict(_))));
        db.create_or_replace_table("t", nums());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn drop_table_works() {
        let mut db = Database::new();
        db.create_table("t", nums()).unwrap();
        assert!(db.drop_table("t").is_some());
        assert!(db.drop_table("t").is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn names_sorted() {
        let mut db = Database::new();
        db.create_table("zeta", nums()).unwrap();
        db.create_table("alpha", nums()).unwrap();
        assert_eq!(db.table_names(), vec!["alpha", "zeta"]);
    }
}
