//! SQL subset front-end: lexer → parser → logical plan.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT [DISTINCT] item (, item)*
//! FROM ident [alias] (JOIN ident [alias] ON ident = ident (AND ident = ident)*)*
//! [WHERE expr]
//! [GROUP BY expr (, expr)*]
//! [HAVING expr]
//! [ORDER BY expr [ASC|DESC] (, expr [ASC|DESC])*]
//! [LIMIT number]
//!
//! item := * | expr [AS ident]
//! expr := standard precedence: OR < AND < NOT < cmp/LIKE/IN/IS < +- < */ < unary
//! ```
//!
//! Qualified column names (`t.col`) are accepted; the qualifier is dropped
//! unless it is the literal `right` disambiguation prefix produced by joins
//! (see [`crate::schema::Schema::join`]).

use std::fmt;

use crate::error::{RelError, RelResult};
use crate::expr::{BinOp, Expr};
use crate::plan::{AggExpr, AggFunc, LogicalPlan, SortKey};
use crate::value::Value;

/// Parses a SQL string into an (unoptimized) logical plan.
pub fn plan_sql(query: &str) -> RelResult<LogicalPlan> {
    let tokens = lex(query)?;
    let mut p = Parser { tokens, pos: 0 };
    let select = p.parse_select()?;
    p.expect_end()?;
    lower(select)
}

// ---------------------------------------------------------------- lexer --

/// SQL token.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(char),
    /// Two-char operators: <=, >=, <>, !=.
    Op2(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Number(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Symbol(c) => write!(f, "{c}"),
            Tok::Op2(s) => write!(f, "{s}"),
        }
    }
}

fn lex(input: &str) -> RelResult<Vec<Tok>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                i += 1;
            }
            out.push(Tok::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            out.push(Tok::Number(chars[start..i].iter().collect()));
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= chars.len() {
                    return Err(RelError::Parse("unterminated string literal".into()));
                }
                if chars[i] == '\'' {
                    // Doubled quote = escaped quote.
                    if i + 1 < chars.len() && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            out.push(Tok::Str(s));
        } else {
            // Two-char operators first.
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            let op2 = match two.as_str() {
                "<=" => Some("<="),
                ">=" => Some(">="),
                "<>" => Some("<>"),
                "!=" => Some("!="),
                _ => None,
            };
            if let Some(op) = op2 {
                out.push(Tok::Op2(op));
                i += 2;
            } else if "(),*=<>+-/%.".contains(c) {
                out.push(Tok::Symbol(c));
                i += 1;
            } else {
                return Err(RelError::Parse(format!("unexpected character: {c}")));
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

/// A parsed select item.
#[derive(Debug, Clone)]
enum SelectItem {
    Star,
    Expr { expr: ParsedExpr, alias: Option<String> },
}

/// Expression AST including aggregate calls (which [`Expr`] cannot hold).
#[derive(Debug, Clone, PartialEq)]
enum ParsedExpr {
    Scalar(Expr),
    Agg { func: AggFunc, arg: Box<ParsedExpr>, distinct: bool, star: bool },
}

#[derive(Debug, Clone)]
struct JoinClause {
    table: String,
    on: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
struct SelectStmt {
    distinct: bool,
    items: Vec<SelectItem>,
    from: String,
    joins: Vec<JoinClause>,
    where_clause: Option<ParsedExpr>,
    group_by: Vec<ParsedExpr>,
    having: Option<ParsedExpr>,
    order_by: Vec<(ParsedExpr, bool)>,
    limit: Option<usize>,
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> RelResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(RelError::Parse(format!(
                "expected {kw}, found {}",
                self.peek().map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Symbol(s)) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, c: char) -> RelResult<()> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(RelError::Parse(format!(
                "expected '{c}', found {}",
                self.peek().map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    fn expect_ident(&mut self) -> RelResult<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(RelError::Parse(format!(
                "expected identifier, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn expect_end(&self) -> RelResult<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(RelError::Parse(format!("trailing input at token {}", self.tokens[self.pos])))
        }
    }

    fn parse_select(&mut self) -> RelResult<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(',') {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        while self.eat_keyword("JOIN") {
            let table = self.parse_table_ref()?;
            self.expect_keyword("ON")?;
            let mut on = vec![self.parse_join_cond()?];
            while self.eat_keyword("AND") {
                on.push(self.parse_join_cond()?);
            }
            joins.push(JoinClause { table, on });
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat_symbol(',') {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.parse_expr()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push((e, asc));
                if !self.eat_symbol(',') {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Tok::Number(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| RelError::Parse(format!("bad LIMIT value: {n}")))?,
                ),
                other => {
                    return Err(RelError::Parse(format!(
                        "expected number after LIMIT, found {}",
                        other.map_or("end of input".to_string(), |t| t.to_string())
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// Table name with optional alias (alias is accepted and ignored — all
    /// columns resolve by bare name, with the join `right.` prefix for
    /// duplicates).
    fn parse_table_ref(&mut self) -> RelResult<String> {
        let name = self.expect_ident()?;
        // Optional alias: next ident that is not a clause keyword.
        if let Some(Tok::Ident(s)) = self.peek() {
            let kw = s.to_uppercase();
            if !["JOIN", "ON", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AND"]
                .contains(&kw.as_str())
            {
                self.pos += 1; // consume alias
            }
        }
        Ok(name)
    }

    fn parse_join_cond(&mut self) -> RelResult<(String, String)> {
        let l = self.expect_ident()?;
        self.expect_symbol('=')?;
        let r = self.expect_ident()?;
        Ok((normalize_column(&l), normalize_column(&r)))
    }

    fn parse_select_item(&mut self) -> RelResult<SelectItem> {
        if self.eat_symbol('*') {
            return Ok(SelectItem::Star);
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("AS") { Some(self.expect_ident()?) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    // expr := or_expr
    fn parse_expr(&mut self) -> RelResult<ParsedExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> RelResult<ParsedExpr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = combine(BinOp::Or, left, right)?;
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> RelResult<ParsedExpr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = combine(BinOp::And, left, right)?;
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> RelResult<ParsedExpr> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            let s = scalar(inner)?;
            return Ok(ParsedExpr::Scalar(Expr::Not(Box::new(s))));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> RelResult<ParsedExpr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            let s = scalar(left)?;
            return Ok(ParsedExpr::Scalar(Expr::IsNull { expr: Box::new(s), negated }));
        }
        // [NOT] LIKE / [NOT] IN
        let negate_next = self.eat_keyword("NOT");
        if self.eat_keyword("LIKE") {
            let pattern = match self.next() {
                Some(Tok::Str(s)) => s,
                other => {
                    return Err(RelError::Parse(format!(
                        "expected string pattern after LIKE, found {}",
                        other.map_or("end".to_string(), |t| t.to_string())
                    )))
                }
            };
            let s = scalar(left)?;
            let like = Expr::Like { expr: Box::new(s), pattern };
            return Ok(ParsedExpr::Scalar(if negate_next {
                Expr::Not(Box::new(like))
            } else {
                like
            }));
        }
        if self.eat_keyword("IN") {
            self.expect_symbol('(')?;
            let mut list = vec![self.parse_literal_value()?];
            while self.eat_symbol(',') {
                list.push(self.parse_literal_value()?);
            }
            self.expect_symbol(')')?;
            let s = scalar(left)?;
            let inlist = Expr::InList { expr: Box::new(s), list };
            return Ok(ParsedExpr::Scalar(if negate_next {
                Expr::Not(Box::new(inlist))
            } else {
                inlist
            }));
        }
        if negate_next {
            return Err(RelError::Parse("NOT must be followed by LIKE or IN here".into()));
        }
        let op = match self.peek() {
            Some(Tok::Symbol('=')) => Some(BinOp::Eq),
            Some(Tok::Symbol('<')) => Some(BinOp::Lt),
            Some(Tok::Symbol('>')) => Some(BinOp::Gt),
            Some(Tok::Op2("<=")) => Some(BinOp::Le),
            Some(Tok::Op2(">=")) => Some(BinOp::Ge),
            Some(Tok::Op2("<>")) | Some(Tok::Op2("!=")) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return combine(op, left, right);
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> RelResult<ParsedExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Symbol('+')) => BinOp::Add,
                Some(Tok::Symbol('-')) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = combine(op, left, right)?;
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> RelResult<ParsedExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Symbol('*')) => BinOp::Mul,
                Some(Tok::Symbol('/')) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = combine(op, left, right)?;
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> RelResult<ParsedExpr> {
        if self.eat_symbol('-') {
            let inner = self.parse_unary()?;
            let s = scalar(inner)?;
            return Ok(ParsedExpr::Scalar(Expr::Binary {
                op: BinOp::Sub,
                left: Box::new(Expr::lit(0i64)),
                right: Box::new(s),
            }));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> RelResult<ParsedExpr> {
        match self.next() {
            Some(Tok::Symbol('(')) => {
                let e = self.parse_expr()?;
                self.expect_symbol(')')?;
                Ok(e)
            }
            Some(Tok::Number(n)) => {
                let v = if n.contains('.') {
                    Value::float(
                        n.parse::<f64>()
                            .map_err(|_| RelError::Parse(format!("bad number: {n}")))?,
                    )
                } else {
                    Value::Int(
                        n.parse::<i64>()
                            .map_err(|_| RelError::Parse(format!("bad number: {n}")))?,
                    )
                };
                Ok(ParsedExpr::Scalar(Expr::Literal(v)))
            }
            Some(Tok::Str(s)) => Ok(ParsedExpr::Scalar(Expr::Literal(Value::Str(s)))),
            Some(Tok::Ident(id)) => {
                let upper = id.to_uppercase();
                if upper == "NULL" {
                    return Ok(ParsedExpr::Scalar(Expr::Literal(Value::Null)));
                }
                if upper == "TRUE" {
                    return Ok(ParsedExpr::Scalar(Expr::Literal(Value::Bool(true))));
                }
                if upper == "FALSE" {
                    return Ok(ParsedExpr::Scalar(Expr::Literal(Value::Bool(false))));
                }
                // Aggregate call?
                if let Some(func) = AggFunc::parse(&id) {
                    if self.eat_symbol('(') {
                        if self.eat_symbol('*') {
                            self.expect_symbol(')')?;
                            return Ok(ParsedExpr::Agg {
                                func,
                                arg: Box::new(ParsedExpr::Scalar(Expr::lit(1i64))),
                                distinct: false,
                                star: true,
                            });
                        }
                        let distinct = self.eat_keyword("DISTINCT");
                        let arg = self.parse_expr()?;
                        self.expect_symbol(')')?;
                        return Ok(ParsedExpr::Agg {
                            func,
                            arg: Box::new(arg),
                            distinct,
                            star: false,
                        });
                    }
                }
                Ok(ParsedExpr::Scalar(Expr::col(normalize_column(&id))))
            }
            other => Err(RelError::Parse(format!(
                "unexpected token: {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn parse_literal_value(&mut self) -> RelResult<Value> {
        match self.parse_unary()? {
            ParsedExpr::Scalar(Expr::Literal(v)) => Ok(v),
            ParsedExpr::Scalar(Expr::Binary { op: BinOp::Sub, left, right })
                if matches!(*left, Expr::Literal(Value::Int(0))) =>
            {
                match *right {
                    Expr::Literal(Value::Int(i)) => Ok(Value::Int(-i)),
                    Expr::Literal(Value::Float(f)) => Ok(Value::float(-f)),
                    _ => Err(RelError::Parse("IN list requires literal values".into())),
                }
            }
            _ => Err(RelError::Parse("IN list requires literal values".into())),
        }
    }
}

/// Strips a table qualifier (`t.col` → `col`), preserving the join
/// disambiguation prefix `right.`.
fn normalize_column(name: &str) -> String {
    match name.split_once('.') {
        Some((prefix, rest)) if prefix.eq_ignore_ascii_case("right") => {
            format!("right.{rest}")
        }
        Some((_, rest)) => rest.to_string(),
        None => name.to_string(),
    }
}

fn scalar(e: ParsedExpr) -> RelResult<Expr> {
    match e {
        ParsedExpr::Scalar(s) => Ok(s),
        ParsedExpr::Agg { .. } => {
            Err(RelError::Parse("aggregate not allowed in this position".into()))
        }
    }
}

fn combine(op: BinOp, l: ParsedExpr, r: ParsedExpr) -> RelResult<ParsedExpr> {
    // Aggregates inside arithmetic (e.g. SUM(a)/COUNT(b)) are not supported;
    // HAVING references aggregates by alias instead.
    let ls = scalar(l)?;
    let rs = scalar(r)?;
    Ok(ParsedExpr::Scalar(Expr::Binary { op, left: Box::new(ls), right: Box::new(rs) }))
}

// ------------------------------------------------------------- lowering --

fn lower(stmt: SelectStmt) -> RelResult<LogicalPlan> {
    // FROM + JOINs.
    let mut plan = LogicalPlan::scan(stmt.from);
    for j in stmt.joins {
        plan = plan.join(LogicalPlan::scan(j.table), j.on);
    }
    // WHERE.
    if let Some(w) = stmt.where_clause {
        plan = plan.filter(scalar(w)?);
    }

    // Split select items into aggregates and scalars.
    let mut has_agg = false;
    for item in &stmt.items {
        if let SelectItem::Expr { expr: ParsedExpr::Agg { .. }, .. } = item {
            has_agg = true;
        }
    }
    let grouped = has_agg || !stmt.group_by.is_empty();

    if grouped {
        // GROUP BY expressions become output columns named by their display
        // form; select items must be group exprs or aggregates.
        let mut group_by: Vec<(Expr, String)> = Vec::new();
        for g in &stmt.group_by {
            let e = scalar(g.clone())?;
            group_by.push((e.clone(), group_name(&e)));
        }
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut out_names: Vec<String> = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    return Err(RelError::Parse("SELECT * cannot be combined with GROUP BY".into()))
                }
                SelectItem::Expr { expr, alias } => match expr {
                    ParsedExpr::Agg { func, arg, distinct, star } => {
                        let func = if *distinct {
                            if *func != AggFunc::Count {
                                return Err(RelError::Parse(
                                    "DISTINCT is only supported with COUNT".into(),
                                ));
                            }
                            AggFunc::CountDistinct
                        } else {
                            *func
                        };
                        let input = if *star { Expr::lit(1i64) } else { scalar((**arg).clone())? };
                        let name = alias.clone().unwrap_or_else(|| format!("agg_{i}"));
                        aggs.push(AggExpr { func, input, output_name: name.clone() });
                        out_names.push(name);
                    }
                    ParsedExpr::Scalar(e) => {
                        // Must match a group expression.
                        let name = alias.clone().unwrap_or_else(|| group_name(e));
                        let matched = group_by.iter().any(|(g, _)| g == e);
                        if !matched {
                            return Err(RelError::Parse(format!(
                                "non-aggregate select item {e} must appear in GROUP BY"
                            )));
                        }
                        // Rename the group output if aliased.
                        for (g, n) in &mut group_by {
                            if g == e {
                                *n = name.clone();
                            }
                        }
                        out_names.push(name);
                    }
                },
            }
        }
        plan = plan.aggregate(group_by.clone(), aggs);
        if let Some(h) = stmt.having {
            plan = plan.filter(scalar(h)?);
        }
        // Project to select order (aggregate output is groups then aggs).
        let exprs: Vec<(Expr, String)> =
            out_names.iter().map(|n| (Expr::col(n.clone()), n.clone())).collect();
        plan = plan.project(exprs);
        lower_tail(plan, stmt.distinct, stmt.order_by, stmt.limit)
    } else {
        // Plain projection; star keeps the input unprojected.
        let is_star = stmt.items.len() == 1 && matches!(stmt.items[0], SelectItem::Star);
        if !is_star {
            let mut exprs = Vec::new();
            for (i, item) in stmt.items.into_iter().enumerate() {
                match item {
                    SelectItem::Star => {
                        return Err(RelError::Parse(
                            "SELECT * cannot be mixed with other items".into(),
                        ))
                    }
                    SelectItem::Expr { expr, alias } => {
                        let e = scalar(expr)?;
                        let name = alias.unwrap_or_else(|| default_name(&e, i));
                        exprs.push((e, name));
                    }
                }
            }
            plan = plan.project(exprs);
        }
        lower_tail(plan, stmt.distinct, stmt.order_by, stmt.limit)
    }
}

fn lower_tail(
    mut plan: LogicalPlan,
    distinct: bool,
    order_by: Vec<(ParsedExpr, bool)>,
    limit: Option<usize>,
) -> RelResult<LogicalPlan> {
    if distinct {
        plan = plan.distinct();
    }
    if !order_by.is_empty() {
        let keys: RelResult<Vec<SortKey>> = order_by
            .into_iter()
            .map(|(e, ascending)| Ok(SortKey { expr: scalar(e)?, ascending }))
            .collect();
        plan = plan.sort(keys?);
    }
    if let Some(n) = limit {
        plan = plan.limit(n);
    }
    Ok(plan)
}

/// Output name for a group-by expression: the column name when plain,
/// otherwise the display form.
fn group_name(e: &Expr) -> String {
    match e {
        Expr::Column(n) => n.clone(),
        other => other.to_string(),
    }
}

fn default_name(e: &Expr, i: usize) -> String {
    match e {
        Expr::Column(n) => n.clone(),
        _ => format!("col_{i}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::{DataType, Schema};
    use crate::table::Table;

    fn db() -> Database {
        let mut db = Database::new();
        let sales = Table::from_rows(
            Schema::of(&[
                ("product", DataType::Str),
                ("quarter", DataType::Str),
                ("amount", DataType::Float),
                ("units", DataType::Int),
            ]),
            vec![
                vec![Value::str("alpha"), Value::str("Q1"), Value::Float(100.0), Value::Int(10)],
                vec![Value::str("alpha"), Value::str("Q2"), Value::Float(150.0), Value::Int(15)],
                vec![Value::str("beta"), Value::str("Q1"), Value::Float(80.0), Value::Int(8)],
                vec![Value::str("beta"), Value::str("Q2"), Value::Float(60.0), Value::Int(6)],
            ],
        )
        .unwrap();
        db.create_table("sales", sales).unwrap();
        let products = Table::from_rows(
            Schema::of(&[("name", DataType::Str), ("maker", DataType::Str)]),
            vec![
                vec![Value::str("alpha"), Value::str("Acme")],
                vec![Value::str("beta"), Value::str("Initech")],
            ],
        )
        .unwrap();
        db.create_table("products", products).unwrap();
        db
    }

    #[test]
    fn select_star() {
        let t = db().run_sql("SELECT * FROM sales").unwrap();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 4);
    }

    #[test]
    fn select_columns_where() {
        let t = db().run_sql("SELECT product, amount FROM sales WHERE amount >= 100").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 2);
    }

    #[test]
    fn arithmetic_and_alias() {
        let t = db().run_sql("SELECT product, amount / units AS unit_price FROM sales").unwrap();
        assert_eq!(t.schema().index_of("unit_price"), Some(1));
        assert_eq!(t.cell(0, 1), &Value::Float(10.0));
    }

    #[test]
    fn string_literal_and_like() {
        let t = db().run_sql("SELECT * FROM sales WHERE product LIKE 'al%'").unwrap();
        assert_eq!(t.num_rows(), 2);
        let t = db().run_sql("SELECT * FROM sales WHERE product NOT LIKE 'al%'").unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn in_list() {
        let t = db().run_sql("SELECT * FROM sales WHERE quarter IN ('Q1')").unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn group_by_aggregates() {
        let t = db()
            .run_sql(
                "SELECT product, SUM(amount) AS total, COUNT(*) AS n \
                 FROM sales GROUP BY product ORDER BY product",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 0), &Value::str("alpha"));
        assert_eq!(t.cell(0, 1), &Value::Float(250.0));
        assert_eq!(t.cell(0, 2), &Value::Int(2));
    }

    #[test]
    fn global_aggregate() {
        let t = db().run_sql("SELECT AVG(units) AS a FROM sales").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.cell(0, 0), &Value::Float(9.75));
    }

    #[test]
    fn count_distinct() {
        let t = db().run_sql("SELECT COUNT(DISTINCT quarter) AS q FROM sales").unwrap();
        assert_eq!(t.cell(0, 0), &Value::Int(2));
    }

    #[test]
    fn having_filters_groups() {
        let t = db()
            .run_sql(
                "SELECT product, SUM(amount) AS total FROM sales \
                 GROUP BY product HAVING total > 200",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.cell(0, 0), &Value::str("alpha"));
    }

    #[test]
    fn join_two_tables() {
        let t = db()
            .run_sql(
                "SELECT product, maker, amount FROM sales \
                 JOIN products ON product = name WHERE maker = 'Acme'",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 1), &Value::str("Acme"));
    }

    #[test]
    fn join_with_aggregate() {
        let t = db()
            .run_sql(
                "SELECT maker, SUM(amount) AS total FROM sales \
                 JOIN products ON product = name GROUP BY maker ORDER BY total DESC",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 0), &Value::str("Acme"));
        assert_eq!(t.cell(0, 1), &Value::Float(250.0));
    }

    #[test]
    fn order_by_directions() {
        let t = db().run_sql("SELECT units FROM sales ORDER BY units DESC LIMIT 2").unwrap();
        assert_eq!(t.cell(0, 0), &Value::Int(15));
        assert_eq!(t.cell(1, 0), &Value::Int(10));
    }

    #[test]
    fn distinct_rows() {
        let t = db().run_sql("SELECT DISTINCT quarter FROM sales").unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn qualified_columns_accepted() {
        let t = db().run_sql("SELECT s.product FROM sales s WHERE s.amount > 90").unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn is_null_and_not() {
        let t = db().run_sql("SELECT * FROM sales WHERE amount IS NOT NULL").unwrap();
        assert_eq!(t.num_rows(), 4);
        let t = db().run_sql("SELECT * FROM sales WHERE NOT (units > 8)").unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn negative_numbers_and_unary_minus() {
        let t = db().run_sql("SELECT * FROM sales WHERE units > -5").unwrap();
        assert_eq!(t.num_rows(), 4);
        let t = db().run_sql("SELECT * FROM sales WHERE units IN (-1, 10)").unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn escaped_quotes() {
        let mut d = Database::new();
        let t =
            Table::from_rows(Schema::of(&[("s", DataType::Str)]), vec![vec![Value::str("it's")]])
                .unwrap();
        d.create_table("t", t).unwrap();
        let out = d.run_sql("SELECT * FROM t WHERE s = 'it''s'").unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn parse_errors_reported() {
        let d = db();
        assert!(matches!(d.run_sql("SELECT FROM sales"), Err(RelError::Parse(_))));
        assert!(matches!(d.run_sql("SELECT * sales"), Err(RelError::Parse(_))));
        assert!(matches!(d.run_sql("SELECT * FROM sales LIMIT x"), Err(RelError::Parse(_))));
        assert!(matches!(
            d.run_sql("SELECT * FROM sales WHERE 'unterminated"),
            Err(RelError::Parse(_))
        ));
        assert!(matches!(
            d.run_sql("SELECT * FROM sales trailing garbage ("),
            Err(RelError::Parse(_))
        ));
    }

    #[test]
    fn non_grouped_column_rejected() {
        let d = db();
        let r = d.run_sql("SELECT product, quarter, SUM(amount) FROM sales GROUP BY product");
        assert!(matches!(r, Err(RelError::Parse(_))));
    }

    #[test]
    fn select_star_with_group_rejected() {
        let d = db();
        assert!(d.run_sql("SELECT * FROM sales GROUP BY product").is_err());
    }

    #[test]
    fn unknown_table_or_column() {
        let d = db();
        assert!(matches!(d.run_sql("SELECT * FROM missing"), Err(RelError::UnknownTable(_))));
        assert!(matches!(d.run_sql("SELECT missing FROM sales"), Err(RelError::UnknownColumn(_))));
    }

    #[test]
    fn parenthesized_precedence() {
        let d = db();
        let a = d
            .run_sql(
                "SELECT * FROM sales WHERE product = 'alpha' OR product = 'beta' AND units > 10",
            )
            .unwrap();
        // AND binds tighter: alpha rows (2) + beta&units>10 (0) = 2.
        assert_eq!(a.num_rows(), 2);
        let b = d
            .run_sql(
                "SELECT * FROM sales WHERE (product = 'alpha' OR product = 'beta') AND units > 10",
            )
            .unwrap();
        assert_eq!(b.num_rows(), 1);
    }
}
