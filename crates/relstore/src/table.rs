//! Columnar tables.
//!
//! Storage is column-major (`Vec<Value>` per column): scans and aggregates
//! touch only the columns they need, per the usual analytical-engine layout.
//! Row views are materialized on demand.

use std::fmt;

use crate::error::{RelError, RelResult};
use crate::schema::{DataType, Schema};
use crate::value::Value;

/// A columnar table: a schema plus one value vector per column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    /// Explicit row count: zero-column relations (legal in the algebra)
    /// still have cardinality.
    rows: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Self { schema, columns, rows: 0 }
    }

    /// Creates a table from rows, validating types against the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> RelResult<Self> {
        let mut t = Self::empty(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.schema.arity()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Appends a row, validating arity and column types.
    ///
    /// Ints are silently widened in float columns.
    pub fn push_row(&mut self, row: Vec<Value>) -> RelResult<()> {
        if row.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                found: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let dtype = self.schema.column(i).dtype;
            if !dtype.admits(v) {
                return Err(RelError::TypeMismatch {
                    expected: self.schema.column(i).name_type(),
                    found: format!("{} in column {}", v.type_name(), self.schema.column(i).name),
                });
            }
        }
        for (i, v) in row.into_iter().enumerate() {
            let dtype = self.schema.column(i).dtype;
            let v = match (dtype, v) {
                (DataType::Float, Value::Int(x)) => Value::Float(x as f64),
                (_, v) => v,
            };
            self.columns[i].push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Borrowed view of a column by index.
    pub fn column(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// Borrowed view of a column by name.
    pub fn column_by_name(&self, name: &str) -> RelResult<&[Value]> {
        Ok(self.column(self.schema.require(name)?))
    }

    /// Materializes row `idx` as an owned vector.
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[idx].clone()).collect()
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Iterates rows as owned vectors.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.num_rows()).map(move |i| self.row(i))
    }

    /// Builds a new table containing only the rows at `indices` (in order).
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns =
            self.columns.iter().map(|c| indices.iter().map(|&i| c[i].clone()).collect()).collect();
        Table { schema: self.schema.clone(), columns, rows: indices.len() }
    }

    /// `(distinct non-NULL values, NULL count)` for one column, by SQL
    /// comparison semantics ([`Value::sort_cmp`]) — the cardinality input
    /// of the planner's cost model. Deterministic: a pure function of the
    /// column contents, independent of row order.
    pub fn column_stats(&self, idx: usize) -> (usize, usize) {
        let mut nulls = 0usize;
        let mut vals: Vec<&Value> = Vec::new();
        for v in self.column(idx) {
            if v.is_null() {
                nulls += 1;
            } else {
                vals.push(v);
            }
        }
        vals.sort_by(|a, b| a.sort_cmp(b));
        let mut distinct = 0usize;
        for i in 0..vals.len() {
            if i == 0 || vals[i - 1].sort_cmp(vals[i]) != std::cmp::Ordering::Equal {
                distinct += 1;
            }
        }
        (distinct, nulls)
    }

    /// Approximate resident bytes (for the E2 storage experiment).
    pub fn approx_bytes(&self) -> usize {
        let cell = |v: &Value| match v {
            Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
            _ => std::mem::size_of::<Value>(),
        };
        self.columns.iter().flat_map(|c| c.iter()).map(cell).sum()
    }

    /// Renders the table in a fixed-width ASCII grid, capped at `max_rows`.
    pub fn render(&self, max_rows: usize) -> String {
        let headers: Vec<String> = self.schema.columns().iter().map(|c| c.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let shown = self.num_rows().min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            let row: Vec<String> =
                (0..self.num_columns()).map(|j| self.cell(i, j).to_string()).collect();
            for (j, c) in row.iter().enumerate() {
                widths[j] = widths[j].max(c.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        if self.num_rows() > shown {
            out.push_str(&format!("({} more rows)\n", self.num_rows() - shown));
        }
        out
    }
}

impl crate::schema::Column {
    /// Static type name for error messages.
    pub(crate) fn name_type(&self) -> &'static str {
        match self.dtype {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn sample() -> Table {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("price", DataType::Float),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::str("widget"), Value::Float(9.5)],
                vec![Value::Int(2), Value::str("gadget"), Value::Float(12.0)],
                vec![Value::Int(3), Value::str("gizmo"), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        let r = t.push_row(vec![Value::Int(4)]);
        assert!(matches!(r, Err(RelError::ArityMismatch { .. })));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = sample();
        let r = t.push_row(vec![Value::str("x"), Value::str("y"), Value::Null]);
        assert!(matches!(r, Err(RelError::TypeMismatch { .. })));
    }

    #[test]
    fn int_widens_in_float_column() {
        let mut t = sample();
        t.push_row(vec![Value::Int(4), Value::str("thing"), Value::Int(7)]).unwrap();
        assert_eq!(t.cell(3, 2), &Value::Float(7.0));
    }

    #[test]
    fn null_allowed_anywhere() {
        let mut t = sample();
        t.push_row(vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn row_and_cell_access() {
        let t = sample();
        assert_eq!(t.row(1), vec![Value::Int(2), Value::str("gadget"), Value::Float(12.0)]);
        assert_eq!(t.cell(0, 1), &Value::str("widget"));
        assert_eq!(t.column_by_name("price").unwrap().len(), 3);
        assert!(t.column_by_name("missing").is_err());
    }

    #[test]
    fn take_reorders() {
        let t = sample();
        let t2 = t.take(&[2, 0]);
        assert_eq!(t2.num_rows(), 2);
        assert_eq!(t2.cell(0, 1), &Value::str("gizmo"));
        assert_eq!(t2.cell(1, 1), &Value::str("widget"));
    }

    #[test]
    fn render_contains_headers_and_values() {
        let t = sample();
        let s = t.render(10);
        assert!(s.contains("name"));
        assert!(s.contains("widget"));
        assert!(s.contains("NULL"));
    }

    #[test]
    fn render_caps_rows() {
        let t = sample();
        let s = t.render(1);
        assert!(s.contains("(2 more rows)"));
    }

    #[test]
    fn empty_table() {
        let t = Table::empty(Schema::of(&[("a", DataType::Int)]));
        assert!(t.is_empty());
        assert_eq!(t.rows().count(), 0);
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let small = Table::from_rows(
            Schema::new(vec![Column::new("s", DataType::Str)]).unwrap(),
            vec![vec![Value::str("ab")]],
        )
        .unwrap();
        let big = Table::from_rows(
            Schema::new(vec![Column::new("s", DataType::Str)]).unwrap(),
            vec![vec![Value::str("a much longer string value here")]],
        )
        .unwrap();
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
