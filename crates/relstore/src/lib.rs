//! # unisem-relstore
//!
//! A columnar mini relational engine: the structured-data substrate of the
//! unisem system and the execution target of both the SQL front-end and the
//! semantic operator synthesis pipeline (§III.C of the paper).
//!
//! Layered like a classic query engine:
//!
//! - [`value`] / [`schema`] / [`table`]: the storage model — typed values,
//!   named columns, columnar tables.
//! - [`expr`]: scalar expression AST and evaluator.
//! - [`plan`]: logical plans (scan/filter/project/join/aggregate/sort/limit).
//! - [`optimize`]: rule-based logical rewrites (predicate merge/pushdown,
//!   constant folding).
//! - [`exec`]: the physical executor (hash join, hash aggregate, stable
//!   sort).
//! - [`sql`]: a SQL subset front-end (lexer → parser → lowering).
//! - [`catalog`]: the [`catalog::Database`] catalog tying it together, with
//!   `run_sql`.
//!
//! The engine is intentionally single-node and in-memory: the paper's
//! contribution is the integration layer above it, and experiments need
//! determinism more than scale.

pub mod catalog;
pub mod error;
pub mod exec;
pub mod expr;
pub mod optimize;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod table;
pub mod value;

pub use catalog::Database;
pub use error::{RelError, RelResult};
pub use exec::{ExecLimits, ExecStats};
pub use expr::Expr;
pub use plan::{AggExpr, AggFunc, JoinType, LogicalPlan, SortKey};
pub use schema::{Column, DataType, Schema};
pub use table::Table;
pub use value::{Date, Value};
