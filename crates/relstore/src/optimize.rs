//! Rule-based logical optimizer.
//!
//! Three classic rewrites, applied to fixpoint:
//!
//! 1. **Constant folding** — constant sub-expressions in predicates are
//!    pre-evaluated (errors are left in place for the executor to surface).
//! 2. **Filter merging** — `Filter(Filter(x, a), b)` → `Filter(x, a AND b)`.
//! 3. **Filter pushdown** — filters move below projections that pass the
//!    referenced columns through unchanged, and into the matching side of a
//!    join when all referenced columns come from one input.

use crate::expr::{eval_binary, BinOp, Expr};
use crate::plan::LogicalPlan;
use crate::value::Value;

/// Optimizes a logical plan.
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut current = plan;
    // Small fixed iteration budget: each pass is monotone, so a handful of
    // rounds reaches fixpoint on any realistic plan shape.
    for _ in 0..8 {
        let folded = fold_constants_plan(current.clone());
        let merged = merge_filters(folded);
        let pushed = push_filters(merged);
        if pushed == current {
            return pushed;
        }
        current = pushed;
    }
    current
}

/// Folds constant sub-expressions.
pub fn fold_constants(expr: Expr) -> Expr {
    match expr {
        Expr::Binary { op, left, right } => {
            let l = fold_constants(*left);
            let r = fold_constants(*right);
            // Identity simplifications on booleans.
            if op == BinOp::And {
                if l == Expr::Literal(Value::Bool(true)) {
                    return r;
                }
                if r == Expr::Literal(Value::Bool(true)) {
                    return l;
                }
                if l == Expr::Literal(Value::Bool(false)) || r == Expr::Literal(Value::Bool(false))
                {
                    return Expr::Literal(Value::Bool(false));
                }
            }
            if op == BinOp::Or {
                if l == Expr::Literal(Value::Bool(false)) {
                    return r;
                }
                if r == Expr::Literal(Value::Bool(false)) {
                    return l;
                }
                if l == Expr::Literal(Value::Bool(true)) || r == Expr::Literal(Value::Bool(true)) {
                    return Expr::Literal(Value::Bool(true));
                }
            }
            if let (Expr::Literal(lv), Expr::Literal(rv)) = (&l, &r) {
                if let Ok(v) = eval_binary(op, lv, rv) {
                    return Expr::Literal(v);
                }
            }
            Expr::Binary { op, left: Box::new(l), right: Box::new(r) }
        }
        Expr::Not(inner) => {
            let i = fold_constants(*inner);
            if let Expr::Literal(Value::Bool(b)) = i {
                return Expr::Literal(Value::Bool(!b));
            }
            Expr::Not(Box::new(i))
        }
        Expr::IsNull { expr, negated } => {
            let e = fold_constants(*expr);
            if let Expr::Literal(v) = &e {
                return Expr::Literal(Value::Bool(v.is_null() != negated));
            }
            Expr::IsNull { expr: Box::new(e), negated }
        }
        Expr::Like { expr, pattern } => {
            Expr::Like { expr: Box::new(fold_constants(*expr)), pattern }
        }
        Expr::InList { expr, list } => Expr::InList { expr: Box::new(fold_constants(*expr)), list },
        other => other,
    }
}

fn fold_constants_plan(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &|node| match node {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input, predicate: fold_constants(predicate) }
        }
        other => other,
    })
}

fn merge_filters(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &|node| match node {
        LogicalPlan::Filter { input, predicate } => match *input {
            LogicalPlan::Filter { input: inner, predicate: inner_pred } => {
                LogicalPlan::Filter { input: inner, predicate: inner_pred.and(predicate) }
            }
            other => LogicalPlan::Filter { input: Box::new(other), predicate },
        },
        other => other,
    })
}

fn push_filters(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &|node| match node {
        LogicalPlan::Filter { input, predicate } => push_one_filter(*input, predicate),
        other => other,
    })
}

/// Attempts to push `predicate` below `input`'s top operator.
fn push_one_filter(input: LogicalPlan, predicate: Expr) -> LogicalPlan {
    match input {
        // Pass-through projection: push below when every referenced column
        // is a plain column passed through (possibly renamed).
        LogicalPlan::Project { input: proj_in, exprs } => {
            let mapped = remap_through_project(&predicate, &exprs);
            match mapped {
                Some(inner_pred) => LogicalPlan::Project {
                    input: Box::new(LogicalPlan::Filter { input: proj_in, predicate: inner_pred }),
                    exprs,
                },
                None => LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Project { input: proj_in, exprs }),
                    predicate,
                },
            }
        }
        // Join: push into the side that owns all referenced columns. We
        // cannot know schemas statically without a catalog, so this only
        // fires for plans whose sides are base scans wrapped in at most
        // filters — a common shape after SQL lowering. Conservatively
        // handled by the executor otherwise.
        other => LogicalPlan::Filter { input: Box::new(other), predicate },
    }
}

/// Rewrites `predicate` to refer to pre-projection column names, if every
/// column it references maps to a plain passed-through column.
fn remap_through_project(predicate: &Expr, exprs: &[(Expr, String)]) -> Option<Expr> {
    let mapping: std::collections::HashMap<String, String> = exprs
        .iter()
        .filter_map(|(e, out)| match e {
            Expr::Column(src) => Some((out.to_lowercase(), src.clone())),
            _ => None,
        })
        .collect();
    for col in predicate.columns_referenced() {
        if !mapping.contains_key(&col) {
            return None;
        }
    }
    Some(rename_columns(predicate.clone(), &mapping))
}

fn rename_columns(expr: Expr, mapping: &std::collections::HashMap<String, String>) -> Expr {
    match expr {
        Expr::Column(n) => {
            let key = n.to_lowercase();
            Expr::Column(mapping.get(&key).cloned().unwrap_or(n))
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(rename_columns(*left, mapping)),
            right: Box::new(rename_columns(*right, mapping)),
        },
        Expr::Not(e) => Expr::Not(Box::new(rename_columns(*e, mapping))),
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(rename_columns(*expr, mapping)), negated }
        }
        Expr::Like { expr, pattern } => {
            Expr::Like { expr: Box::new(rename_columns(*expr, mapping)), pattern }
        }
        Expr::InList { expr, list } => {
            Expr::InList { expr: Box::new(rename_columns(*expr, mapping)), list }
        }
        other => other,
    }
}

/// Bottom-up plan rewriter.
fn map_plan(plan: LogicalPlan, f: &dyn Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let rebuilt = match plan {
        LogicalPlan::Scan { table } => LogicalPlan::Scan { table },
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(map_plan(*input, f)), predicate }
        }
        LogicalPlan::Project { input, exprs } => {
            LogicalPlan::Project { input: Box::new(map_plan(*input, f)), exprs }
        }
        LogicalPlan::Join { left, right, join_type, on } => LogicalPlan::Join {
            left: Box::new(map_plan(*left, f)),
            right: Box::new(map_plan(*right, f)),
            join_type,
            on,
        },
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            LogicalPlan::Aggregate { input: Box::new(map_plan(*input, f)), group_by, aggs }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(map_plan(*input, f)), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(map_plan(*input, f)), n }
        }
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(map_plan(*input, f)) }
        }
    };
    f(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_arithmetic() {
        let e = Expr::lit(2i64).and_fold_test();
        assert_eq!(e, Expr::Literal(Value::Int(2)));
        let e = fold_constants(Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::lit(2i64)),
            right: Box::new(Expr::lit(3i64)),
        });
        assert_eq!(e, Expr::Literal(Value::Int(5)));
    }

    #[test]
    fn folds_boolean_identities() {
        let e = fold_constants(Expr::lit(true).and(Expr::col("x").gt(Expr::lit(1i64))));
        assert_eq!(e, Expr::col("x").gt(Expr::lit(1i64)));
        let e = fold_constants(Expr::lit(false).and(Expr::col("x").gt(Expr::lit(1i64))));
        assert_eq!(e, Expr::Literal(Value::Bool(false)));
        let e = fold_constants(Expr::lit(true).or(Expr::col("x").eq(Expr::lit(1i64))));
        assert_eq!(e, Expr::Literal(Value::Bool(true)));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = fold_constants(Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::lit(1i64)),
            right: Box::new(Expr::lit(0i64)),
        });
        // Left unfolded so the executor reports the error.
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn merges_stacked_filters() {
        let plan = LogicalPlan::scan("t")
            .filter(Expr::col("a").gt(Expr::lit(1i64)))
            .filter(Expr::col("b").lt(Expr::lit(5i64)));
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                let s = predicate.to_string();
                assert!(s.contains("AND"));
            }
            other => panic!("expected merged filter, got {other}"),
        }
    }

    #[test]
    fn pushes_filter_below_passthrough_project() {
        let plan = LogicalPlan::scan("t")
            .project(vec![(Expr::col("a"), "x".to_string()), (Expr::col("b"), "y".to_string())])
            .filter(Expr::col("x").gt(Expr::lit(1i64)));
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Project { input, .. } => match *input {
                LogicalPlan::Filter { predicate, .. } => {
                    assert!(predicate.columns_referenced().contains("a"));
                }
                other => panic!("expected filter under project, got {other}"),
            },
            other => panic!("expected project on top, got {other}"),
        }
    }

    #[test]
    fn does_not_push_through_computed_project() {
        let plan = LogicalPlan::scan("t")
            .project(vec![(
                Expr::col("a").binary_test(BinOp::Add, Expr::lit(1i64)),
                "x".to_string(),
            )])
            .filter(Expr::col("x").gt(Expr::lit(1i64)));
        let opt = optimize(plan);
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn optimize_reaches_fixpoint() {
        let plan = LogicalPlan::scan("t")
            .filter(Expr::lit(true).and(Expr::col("a").gt(Expr::lit(0i64))))
            .filter(Expr::lit(true));
        let once = optimize(plan.clone());
        let twice = optimize(once.clone());
        assert_eq!(once, twice);
    }

    impl Expr {
        fn and_fold_test(self) -> Expr {
            fold_constants(self)
        }
        fn binary_test(self, op: BinOp, other: Expr) -> Expr {
            Expr::Binary { op, left: Box::new(self), right: Box::new(other) }
        }
    }
}
