//! Logical query plans.
//!
//! A [`LogicalPlan`] is a tree of relational operators produced either by
//! the SQL front-end ([`crate::sql`]) or directly by the semantic operator
//! synthesis pipeline in `unisem-semops` — the paper's §III.C maps natural
//! language onto exactly these operators ("aggregations (e.g., SUM …),
//! filtering operations …, SQL joins").

use std::fmt;

use crate::expr::Expr;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (`COUNT(*)` when the expression is a literal).
    Count,
    /// Count of distinct non-null values.
    CountDistinct,
    /// Sum of numeric values (NULLs skipped).
    Sum,
    /// Arithmetic mean (NULLs skipped).
    Avg,
    /// Minimum by SQL comparison (NULLs skipped).
    Min,
    /// Maximum by SQL comparison (NULLs skipped).
    Max,
}

impl AggFunc {
    /// SQL keyword.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::CountDistinct => "COUNT(DISTINCT)",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parses a SQL aggregate keyword.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// One aggregate in an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored for `COUNT(*)`, conventionally a literal).
    pub input: Expr,
    /// Output column name.
    pub output_name: String,
}

/// Join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with NULLs).
    Left,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Sort expression (usually a column).
    pub expr: Expr,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

/// A logical relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a named base table from the catalog.
    Scan {
        /// Table name.
        table: String,
    },
    /// Keep rows where `predicate` evaluates to TRUE.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Filter predicate (NULL counts as false).
        predicate: Expr,
    },
    /// Compute output columns from expressions.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Equi-join two inputs.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join type.
        join_type: JoinType,
        /// Pairs of `(left column, right column)` equality conditions.
        on: Vec<(String, String)>,
    },
    /// Group and aggregate.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping expressions with output names (empty = global aggregate).
        group_by: Vec<(Expr, String)>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Sort rows.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
    /// Remove duplicate rows.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Scan constructor.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan { table: table.into() }
    }

    /// Adds a filter above this plan.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter { input: Box::new(self), predicate }
    }

    /// Adds a projection above this plan.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project { input: Box::new(self), exprs }
    }

    /// Adds an inner equi-join with another plan.
    pub fn join(self, right: LogicalPlan, on: Vec<(String, String)>) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            join_type: JoinType::Inner,
            on,
        }
    }

    /// Adds an aggregate above this plan.
    pub fn aggregate(self, group_by: Vec<(Expr, String)>, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate { input: Box::new(self), group_by, aggs }
    }

    /// Adds a sort above this plan.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort { input: Box::new(self), keys }
    }

    /// Adds a limit above this plan.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit { input: Box::new(self), n }
    }

    /// Adds duplicate elimination above this plan.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct { input: Box::new(self) }
    }

    /// Pretty, indented one-operator-per-line rendering (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table } => {
                out.push_str(&format!("{pad}Scan: {table}\n"));
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter: {predicate}\n"));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Project { input, exprs } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                out.push_str(&format!("{pad}Project: {}\n", cols.join(", ")));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Join { left, right, join_type, on } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                out.push_str(&format!("{pad}{join_type:?}Join: {}\n", conds.join(" AND ")));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                let groups: Vec<String> = group_by.iter().map(|(e, _)| e.to_string()).collect();
                let fs: Vec<String> = aggs
                    .iter()
                    .map(|a| format!("{}({}) AS {}", a.func.name(), a.input, a.output_name))
                    .collect();
                out.push_str(&format!(
                    "{pad}Aggregate: group=[{}] aggs=[{}]\n",
                    groups.join(", "),
                    fs.join(", ")
                ));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{} {}", k.expr, if k.ascending { "ASC" } else { "DESC" }))
                    .collect();
                out.push_str(&format!("{pad}Sort: {}\n", ks.join(", ")));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(depth + 1, out);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = LogicalPlan::scan("sales")
            .filter(Expr::col("qty").gt(Expr::lit(5i64)))
            .project(vec![(Expr::col("product"), "product".to_string())])
            .limit(10);
        let text = plan.explain();
        assert!(text.contains("Scan: sales"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Limit: 10"));
        // Nested order: limit outermost, scan innermost.
        let limit_pos = text.find("Limit").unwrap();
        let scan_pos = text.find("Scan").unwrap();
        assert!(limit_pos < scan_pos);
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
    }

    #[test]
    fn explain_join() {
        let plan = LogicalPlan::scan("a")
            .join(LogicalPlan::scan("b"), vec![("id".to_string(), "a_id".to_string())]);
        assert!(plan.explain().contains("InnerJoin: id = a_id"));
    }
}
