//! Error types for the relational engine.

use std::fmt;

/// Result alias for relstore operations.
pub type RelResult<T> = Result<T, RelError>;

/// Errors produced by the relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// Referenced column does not exist in the schema.
    UnknownColumn(String),
    /// Referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A value had the wrong type for an operation.
    TypeMismatch { expected: &'static str, found: String },
    /// Row arity differs from schema arity.
    ArityMismatch { expected: usize, found: usize },
    /// SQL lexing/parsing failed.
    Parse(String),
    /// Plan construction or execution failed.
    Plan(String),
    /// Division by zero during expression evaluation.
    DivisionByZero,
    /// Two tables/columns conflicted (e.g. duplicate name on create).
    Conflict(String),
    /// A deterministic resource governor tripped: the plan would exceed
    /// `limit` units of `what` (e.g. join output rows). Callers treat this
    /// as a downgrade signal, not a bug.
    ResourceExhausted { what: &'static str, limit: usize },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RelError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            RelError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RelError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected} values, found {found}")
            }
            RelError::Parse(msg) => write!(f, "SQL parse error: {msg}"),
            RelError::Plan(msg) => write!(f, "plan error: {msg}"),
            RelError::DivisionByZero => write!(f, "division by zero"),
            RelError::Conflict(msg) => write!(f, "conflict: {msg}"),
            RelError::ResourceExhausted { what, limit } => {
                write!(f, "resource exhausted: {what} would exceed limit {limit}")
            }
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(RelError::UnknownColumn("x".into()).to_string().contains("x"));
        assert!(RelError::Parse("bad token".into()).to_string().contains("bad token"));
        let e = RelError::TypeMismatch { expected: "int", found: "str".into() };
        assert!(e.to_string().contains("int") && e.to_string().contains("str"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelError::DivisionByZero);
    }
}
