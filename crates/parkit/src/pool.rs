//! The scoped fork-join pool.

use std::any::Any;
use std::fmt;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on the automatic chunk size (items per claimed chunk).
pub const DEFAULT_CHUNK: usize = 1024;

/// A worker task panicked; carries the rendered panic message.
///
/// Returned by the `try_*` methods. The plain methods re-raise the original
/// payload on the calling thread instead, so a panicking task behaves
/// exactly as it would in a sequential loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicError {
    /// Stringified panic payload of the first worker that panicked.
    pub message: String,
}

impl fmt::Display for PanicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker task panicked: {}", self.message)
    }
}

impl std::error::Error for PanicError {}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Automatic chunk size: a function of the input length ONLY (never the
/// thread count), so chunk boundaries — and therefore reduction association
/// order — are identical at every `UNISEM_THREADS` setting.
fn auto_chunk(n: usize) -> usize {
    (n / 64).clamp(1, DEFAULT_CHUNK)
}

/// The automatic chunk size the pool would use for an input of length `n`.
/// Width-invariant by construction (depends on `n` only), so observers —
/// e.g. a `parkit.batch_chunks` metric — record the same value at every
/// thread count.
pub fn auto_chunk_size(n: usize) -> usize {
    auto_chunk(n)
}

/// Number of chunks an auto-chunked map over `n` items dispatches. Also
/// width-invariant; `0` for an empty input.
pub fn auto_chunk_count(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        ceil_div(n, auto_chunk(n))
    }
}

fn ceil_div(n: usize, d: usize) -> usize {
    n.div_ceil(d)
}

fn env_threads() -> Option<usize> {
    std::env::var("UNISEM_THREADS").ok().and_then(|v| v.trim().parse().ok()).filter(|&t| t >= 1)
}

fn resolve_default_threads() -> usize {
    env_threads()
        .or_else(|| std::thread::available_parallelism().ok().map(usize::from))
        .unwrap_or(1)
}

/// The process-wide default pool: `UNISEM_THREADS` if set, else
/// `available_parallelism`. Resolved once per process.
pub fn global() -> Pool {
    static THREADS: OnceLock<usize> = OnceLock::new();
    Pool::new(*THREADS.get_or_init(resolve_default_threads))
}

/// A scoped fork-join pool of a fixed logical width.
///
/// The pool is a *policy*, not a set of resident threads: each call spawns
/// `threads - 1` scoped workers (the caller is the remaining worker) and
/// joins them before returning. Nested calls therefore cannot deadlock, and
/// a 1-thread pool never spawns at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        global()
    }
}

impl Pool {
    /// A pool of `threads` logical workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// A single-threaded pool: every call is a plain sequential loop.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A pool sized by `UNISEM_THREADS` / `available_parallelism`
    /// (re-reads the environment on every call, unlike [`global`]).
    pub fn from_env() -> Self {
        Self::new(resolve_default_threads())
    }

    /// The logical worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Core executor: runs `job(0..n_chunks)` across the pool, returning
    /// results in chunk-index order, or the first panic payload.
    ///
    /// Chunks are claimed dynamically from an atomic cursor, so load
    /// balances across workers; results are merged by index, so the output
    /// does not depend on which worker ran which chunk.
    fn run<R, F>(&self, n_chunks: usize, job: F) -> Result<Vec<R>, Box<dyn Any + Send>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n_chunks == 0 {
            return Ok(Vec::new());
        }
        let cursor = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

        let worker = || {
            let mut out: Vec<(usize, R)> = Vec::new();
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                match panic::catch_unwind(AssertUnwindSafe(|| job(i))) {
                    Ok(r) => out.push((i, r)),
                    Err(payload) => {
                        let mut slot =
                            first_panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            out
        };

        let spawned = self.threads.min(n_chunks).saturating_sub(1);
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(spawned + 1);
        if spawned == 0 {
            parts.push(worker());
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..spawned).map(|_| scope.spawn(worker)).collect();
                parts.push(worker());
                for h in handles {
                    // Workers never unwind (the job is caught inside), so a
                    // join error can only be an external thread kill; treat
                    // it like a panic.
                    match h.join() {
                        Ok(part) => parts.push(part),
                        Err(payload) => {
                            let mut slot = first_panic
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                        }
                    }
                }
            });
        }

        if let Some(payload) =
            first_panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
        {
            return Err(payload);
        }

        // Index-ordered merge: output position = chunk index.
        let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
        for part in parts {
            for (i, r) in part {
                debug_assert!(slots[i].is_none(), "chunk {i} claimed twice");
                slots[i] = Some(r);
            }
        }
        Ok(slots.into_iter().map(|s| s.expect("all chunks completed")).collect())
    }

    /// Maps `f` over `0..n`, returning results in index order. Panics in
    /// `f` are re-raised on the caller.
    pub fn par_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.try_par_map_range_chunked(n, auto_chunk(n), &f).unwrap_or_else(resume)
    }

    /// [`Pool::par_map_range`] with an explicit chunk size (items per
    /// claimed chunk). The chunk size must not be derived from the thread
    /// count, or reduction determinism across `UNISEM_THREADS` is lost.
    pub fn par_map_range_chunked<R, F>(&self, n: usize, chunk_size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.try_par_map_range_chunked(n, chunk_size, &f).unwrap_or_else(resume)
    }

    /// Fallible core of the range maps.
    fn try_par_map_range_chunked<R, F>(
        &self,
        n: usize,
        chunk_size: usize,
        f: &F,
    ) -> Result<Vec<R>, Box<dyn Any + Send>>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = ceil_div(n, chunk_size);
        let chunked = self.run(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(n);
            (lo..hi).map(f).collect::<Vec<R>>()
        })?;
        Ok(chunked.into_iter().flatten().collect())
    }

    /// Maps `f` over a slice, returning results in input order. Panics in
    /// `f` are re-raised on the caller.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_range(items.len(), |i| f(&items[i]))
    }

    /// [`Pool::par_map`] that surfaces a worker panic as a [`PanicError`]
    /// instead of re-raising it.
    pub fn try_par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, PanicError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_par_map_range_chunked(items.len(), auto_chunk(items.len()), &|i| f(&items[i]))
            .map_err(|p| PanicError { message: payload_message(&*p) })
    }

    /// Applies `f` to fixed-size chunks of `items` (last chunk may be
    /// short), returning one result per chunk in chunk order. `f` receives
    /// the chunk's starting index and the chunk slice.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = ceil_div(items.len(), chunk_size);
        self.run(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(items.len());
            f(lo, &items[lo..hi])
        })
        .unwrap_or_else(resume)
    }

    /// Range form of [`Pool::par_chunks`]: applies `f` to fixed-size index
    /// sub-ranges of `0..n`, returning one result per sub-range in range
    /// order.
    pub fn par_chunks_range<R, F>(&self, n: usize, chunk_size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = ceil_div(n, chunk_size);
        self.run(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(n);
            f(lo..hi)
        })
        .unwrap_or_else(resume)
    }

    /// Deterministic parallel reduction: folds each fixed-size chunk with
    /// `fold`, then combines the chunk accumulators **left to right in
    /// chunk order**. Because chunk boundaries depend only on
    /// `(items.len(), chunk_size)`, the association order — and thus every
    /// floating-point rounding step — is identical for any thread count.
    ///
    /// Returns `None` for an empty input.
    pub fn par_reduce<T, A, FF, CF>(
        &self,
        items: &[T],
        chunk_size: usize,
        fold: FF,
        combine: CF,
    ) -> Option<A>
    where
        T: Sync,
        A: Send,
        FF: Fn(&[T]) -> A + Sync,
        CF: Fn(A, A) -> A,
    {
        let partials = self.par_chunks(items, chunk_size, |_, chunk| fold(chunk));
        partials.into_iter().reduce(combine)
    }

    /// Range form of [`Pool::par_reduce`]: folds index sub-ranges of
    /// `0..n`, combining partials in range order.
    pub fn par_reduce_range<A, FF, CF>(
        &self,
        n: usize,
        chunk_size: usize,
        fold: FF,
        combine: CF,
    ) -> Option<A>
    where
        A: Send,
        FF: Fn(Range<usize>) -> A + Sync,
        CF: Fn(A, A) -> A,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = ceil_div(n, chunk_size);
        let partials = self
            .run(n_chunks, |c| {
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(n);
                fold(lo..hi)
            })
            .unwrap_or_else(resume);
        partials.into_iter().reduce(combine)
    }
}

fn resume<R>(payload: Box<dyn Any + Send>) -> R {
    panic::resume_unwind(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let items: Vec<u64> = (0..1000).collect();
            let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
            assert_eq!(pool.par_map(&items, |x| x * x + 1), expected, "threads={threads}");
        }
    }

    #[test]
    fn results_are_input_ordered_not_completion_ordered() {
        let pool = Pool::new(4);
        // Earlier items sleep longer, so completion order inverts input
        // order on a real multi-core scheduler; the merge must restore it.
        let items: Vec<u64> = (0..32).collect();
        let out = pool.par_map(&items, |&x| {
            std::thread::sleep(std::time::Duration::from_micros(40u64.saturating_sub(x)));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |x| x + 1).is_empty());
        assert_eq!(pool.par_map(&[7u32], |x| x + 1), vec![8]);
        assert_eq!(pool.par_reduce(&empty, 8, |c| c.iter().sum::<u32>(), |a, b| a + b), None);
        assert_eq!(pool.par_reduce(&[7u32], 8, |c| c.iter().sum::<u32>(), |a, b| a + b), Some(7));
    }

    #[test]
    fn float_reduction_bit_identical_across_thread_counts() {
        // Pathological float mix where association order matters.
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.7).sin() * 1e-3 + 1e9).collect();
        let reference =
            Pool::new(1).par_reduce(&xs, 128, |c| c.iter().sum::<f64>(), |a, b| a + b).unwrap();
        for threads in [2, 3, 4, 8] {
            let got = Pool::new(threads)
                .par_reduce(&xs, 128, |c| c.iter().sum::<f64>(), |a, b| a + b)
                .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_covers_input_with_ragged_tail() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..10).collect();
        let spans = pool.par_chunks(&items, 4, |start, chunk| (start, chunk.to_vec()));
        assert_eq!(spans, vec![(0, vec![0, 1, 2, 3]), (4, vec![4, 5, 6, 7]), (8, vec![8, 9])]);
    }

    #[test]
    fn try_par_map_reports_panic_as_error() {
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..100).collect();
        let err = pool
            .try_par_map(&items, |&x| {
                if x == 37 {
                    panic!("boom at {x}");
                }
                x
            })
            .unwrap_err();
        assert!(err.message.contains("boom at 37"), "{err}");
    }

    #[test]
    fn par_map_reraises_panic_payload() {
        let pool = Pool::new(2);
        let items: Vec<u32> = (0..64).collect();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                assert!(x != 40, "kaboom");
                x
            })
        }));
        let payload = caught.expect_err("must propagate");
        assert!(payload_message(&*payload).contains("kaboom"));
    }

    #[test]
    fn nested_parallelism_completes() {
        let pool = Pool::new(4);
        let outer: Vec<usize> = (0..8).collect();
        let out = pool.par_map(&outer, |&i| {
            let inner = Pool::new(4);
            inner.par_map_range(16, |j| i * 100 + j).iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..8).map(|i| (0..16).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn global_pool_resolves_at_least_one_thread() {
        assert!(global().threads() >= 1);
        assert_eq!(Pool::new(0).threads(), 1, "zero clamps to sequential");
        assert_eq!(Pool::sequential().threads(), 1);
    }

    #[test]
    fn auto_chunk_is_length_dependent_only() {
        assert_eq!(auto_chunk(0), 1);
        assert_eq!(auto_chunk(63), 1);
        assert_eq!(auto_chunk(6400), 100);
        assert_eq!(auto_chunk(1_000_000), DEFAULT_CHUNK);
        assert_eq!(auto_chunk_size(6400), 100, "public helper mirrors the internal policy");
        assert_eq!(auto_chunk_count(0), 0);
        assert_eq!(auto_chunk_count(63), 63, "chunk size 1 → one chunk per item");
        assert_eq!(auto_chunk_count(6400), 64);
    }

    #[test]
    fn par_reduce_range_matches_slice_form() {
        let xs: Vec<i64> = (0..5000).map(|i| i * 3 - 7).collect();
        let pool = Pool::new(4);
        let a = pool.par_reduce(&xs, 97, |c| c.iter().sum::<i64>(), |x, y| x + y);
        let b =
            pool.par_reduce_range(xs.len(), 97, |r| r.map(|i| xs[i]).sum::<i64>(), |x, y| x + y);
        assert_eq!(a, b);
    }
}
