//! # parkit
//!
//! Deterministic parallelism for the unisem workspace (DESIGN.md §6/§7):
//! a zero-dependency, std-only fork-join toolkit whose results are
//! **bit-identical for any thread count**, including 1.
//!
//! The determinism contract rests on three rules, all enforced here rather
//! than left to callers:
//!
//! 1. **Index-ordered merge.** Work is split into chunks; whichever worker
//!    finishes a chunk, its results are placed back by chunk index, so the
//!    output order equals the input order.
//! 2. **Thread-count-invariant chunking.** Chunk boundaries are a function
//!    of the input length (and an explicit chunk size) only — never of the
//!    thread count. This matters for floating-point reductions: partial
//!    sums are combined left-to-right in chunk order, so the association
//!    order (and therefore every rounding step) is the same whether the
//!    chunks ran on one thread or eight.
//! 3. **Forked RNG substreams.** Stochastic work must not share one
//!    sequential RNG across items. Callers fork one decorrelated substream
//!    per item *before* dispatch (`detkit::Rng::fork`), so each item's
//!    stream is a pure function of its index, not of scheduling.
//!
//! The pool is *scoped*: every call spawns its workers inside
//! [`std::thread::scope`] and joins them before returning. There is no
//! resident worker pool and no global job queue, which makes nested
//! parallelism (`par_map` inside `par_map`) trivially deadlock-free — inner
//! calls simply spawn their own scoped workers. The calling thread always
//! participates as a worker, so a pool of 1 thread never spawns at all and
//! degenerates to a plain sequential loop.
//!
//! Worker panics are caught, the remaining chunks are abandoned, and the
//! first panic payload is re-raised on the caller (or returned as an error
//! from the `try_` variants) — a panicking task can never hang the pool.
//!
//! Thread count resolution (for [`global`] and [`Pool::from_env`]):
//! `UNISEM_THREADS` environment variable if set and ≥ 1, else
//! [`std::thread::available_parallelism`], else 1.

mod pool;

pub use pool::{auto_chunk_count, auto_chunk_size, global, PanicError, Pool, DEFAULT_CHUNK};
