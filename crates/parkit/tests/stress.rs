//! Concurrency stress tests: oversubscription and nested parallelism must
//! complete (and complete correctly) without deadlock.
//!
//! Every test body runs under a watchdog: the work happens on a spawned
//! thread and the test thread waits on a channel with a timeout, so a
//! deadlocked pool fails the test instead of hanging the suite.

use std::sync::mpsc;
use std::time::Duration;

use parkit::Pool;

/// Watchdog harness: fail loudly if `f` does not finish within `secs`.
fn with_watchdog<R: Send + 'static>(secs: u64, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(r) => {
            worker.join().expect("watchdog worker panicked");
            r
        }
        Err(_) => panic!("watchdog: work did not complete within {secs}s (deadlock?)"),
    }
}

#[test]
fn oversubscription_many_more_tasks_than_threads() {
    // 10_000 items on small pools: every chunk must be claimed exactly
    // once and merge back in order.
    let out = with_watchdog(60, || {
        let items: Vec<u64> = (0..10_000).collect();
        let mut results = Vec::new();
        for threads in [1, 2, 3, 4, 8] {
            results.push(Pool::new(threads).par_map(&items, |&x| x.wrapping_mul(2654435761) >> 7));
        }
        results
    });
    for r in &out[1..] {
        assert_eq!(r, &out[0], "oversubscribed runs diverged across widths");
    }
    assert_eq!(out[0].len(), 10_000);
}

#[test]
fn nested_par_map_inside_par_map_no_deadlock() {
    // Scoped pools have no shared worker queue, so an inner par_map on the
    // same width cannot starve: total live threads grow, nothing blocks.
    let out = with_watchdog(60, || {
        let pool = Pool::new(4);
        let outer: Vec<usize> = (0..64).collect();
        pool.par_map(&outer, |&i| {
            let inner = Pool::new(4);
            inner.par_map_range(64, |j| (i * 64 + j) as u64).iter().sum::<u64>()
        })
    });
    let expected: Vec<u64> = (0..64u64).map(|i| (0..64).map(|j| i * 64 + j).sum()).collect();
    assert_eq!(out, expected);
}

#[test]
fn triple_nesting_with_reduction() {
    let got = with_watchdog(60, || {
        let pool = Pool::new(3);
        pool.par_map_range(8, |a| {
            Pool::new(3)
                .par_reduce_range(
                    8,
                    2,
                    |r| {
                        r.map(|b| {
                            Pool::new(2)
                                .par_map_range(4, |c| (a + b + c) as u64)
                                .iter()
                                .sum::<u64>()
                        })
                        .sum::<u64>()
                    },
                    |x, y| x + y,
                )
                .unwrap_or(0)
        })
    });
    let expected: Vec<u64> = (0..8u64)
        .map(|a| (0..8u64).map(|b| (0..4u64).map(|c| a + b + c).sum::<u64>()).sum())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn panic_under_oversubscription_still_returns() {
    // A panic mid-stream with thousands of queued chunks must stop the
    // pool and report, not hang on unclaimed work.
    let err = with_watchdog(60, || {
        let items: Vec<u64> = (0..50_000).collect();
        Pool::new(4)
            .try_par_map(&items, |&x| {
                if x == 25_000 {
                    panic!("mid-stream failure");
                }
                x
            })
            .unwrap_err()
    });
    assert!(err.message.contains("mid-stream failure"), "{err}");
}

#[test]
fn repeated_pool_churn() {
    // Scope-per-call means pools are cheap and stateless; hammering many
    // short calls must neither leak nor wedge.
    let total = with_watchdog(60, || {
        let pool = Pool::new(4);
        let mut acc = 0u64;
        for round in 0..500u64 {
            acc = acc.wrapping_add(
                pool.par_reduce_range(64, 8, |r| r.map(|i| i as u64 + round).sum(), |a, b| a + b)
                    .unwrap_or(0),
            );
        }
        acc
    });
    let expected: u64 = (0..500u64).map(|round| (0..64u64).map(|i| i + round).sum::<u64>()).sum();
    assert_eq!(total, expected);
}
