//! Property tests for the parkit determinism contract (detkit::prop).
//!
//! The laws under test:
//! - `par_map` ≡ sequential `map`, for any input, chunk size, and pool width;
//! - `par_reduce` combines chunk folds left-to-right in chunk order, so its
//!   result — including float rounding — equals the sequential chunked
//!   fold at ANY pool width (the associativity-ordering law);
//! - empty and singleton inputs behave like their sequential counterparts;
//! - a panicking worker surfaces as an error (or re-raised panic), never a
//!   hang or a partial result.

use detkit::prop::{self, vec_of, zip3};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use parkit::Pool;

/// Inputs: arbitrary values, an arbitrary (small) chunk size, and an
/// arbitrary pool width — the full determinism matrix.
fn inputs() -> detkit::prop::Gen<(Vec<i64>, usize, usize)> {
    zip3(&vec_of(&prop::i64s(-1_000, 1_000), 0, 120), &prop::usizes(1, 17), &prop::usizes(1, 9))
}

prop_check!(par_map_equals_sequential_map, inputs(), |(items, _, threads)| {
    let expected: Vec<i64> = items.iter().map(|x| x * 3 - 1).collect();
    let got = Pool::new(*threads).par_map(items, |x| x * 3 - 1);
    prop_assert_eq!(got, expected);
    Ok(())
});

prop_check!(par_map_range_chunked_equals_map, inputs(), |(items, chunk, threads)| {
    let expected: Vec<i64> = items.iter().map(|x| x ^ 0x5A).collect();
    let got = Pool::new(*threads).par_map_range_chunked(items.len(), *chunk, |i| items[i] ^ 0x5A);
    prop_assert_eq!(got, expected);
    Ok(())
});

// The associativity-ordering law: whatever the pool width, the reduction
// is (fold c0) ⊕ (fold c1) ⊕ … in chunk order. Checked on a NON-commutative
// combine (string concatenation), where any ordering slip is visible.
prop_check!(par_reduce_ordering_law, inputs(), |(items, chunk, threads)| {
    let fold = |c: &[i64]| c.iter().map(|x| format!("{x},")).collect::<String>();
    let expected = items.chunks(*chunk).map(fold).reduce(|a, b| a + &b);
    let got = Pool::new(*threads).par_reduce(items, *chunk, fold, |a, b| a + &b);
    prop_assert_eq!(got, expected);
    Ok(())
});

// Float partial sums: bit-identical to the 1-thread result at any width
// and chunk size (chunk boundaries depend only on input length).
prop_check!(
    par_reduce_float_bits_stable,
    zip3(&vec_of(&prop::f64s(-1e6, 1e6), 0, 150), &prop::usizes(1, 17), &prop::usizes(2, 9)),
    |(items, chunk, threads)| {
        let sum = |c: &[f64]| c.iter().sum::<f64>();
        let seq = Pool::sequential().par_reduce(items, *chunk, sum, |a, b| a + b);
        let par = Pool::new(*threads).par_reduce(items, *chunk, sum, |a, b| a + b);
        match (seq, par) {
            (None, None) => Ok(()),
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} != {}", a, b);
                Ok(())
            }
            (a, b) => Err(format!("empty-ness diverged: {a:?} vs {b:?}")),
        }
    }
);

prop_check!(empty_and_singleton_edges, prop::usizes(1, 9), |threads| {
    let pool = Pool::new(*threads);
    let empty: Vec<u64> = Vec::new();
    prop_assert!(pool.par_map(&empty, |x| x + 1).is_empty());
    prop_assert_eq!(pool.par_reduce(&empty, 4, |c| c.len(), |a, b| a + b), None);
    prop_assert_eq!(pool.par_map(&[9u64], |x| x + 1), vec![10]);
    prop_assert_eq!(pool.par_reduce(&[9u64], 4, |c| c.iter().sum::<u64>(), |a, b| a + b), Some(9));
    Ok(())
});

// A worker panic must come back as an error naming the payload — never a
// hang, and never a partial Ok.
prop_check!(
    panic_in_worker_propagates_as_error,
    zip3(&prop::usizes(0, 99), &prop::usizes(1, 17), &prop::usizes(1, 9)),
    |(bad, _, threads)| {
        let items: Vec<usize> = (0..100).collect();
        let bad = *bad;
        let result = Pool::new(*threads).try_par_map(&items, |&x| {
            if x == bad {
                panic!("injected failure at {x}");
            }
            x
        });
        match result {
            Err(e) => {
                prop_assert!(e.message.contains("injected failure"), "unexpected: {}", e);
                Ok(())
            }
            Ok(_) => Err("panicking map returned Ok".to_string()),
        }
    }
);
