//! Serving-scale macro-bench workload: a size-parameterized corpus plus a
//! seeded query mix for throughput/latency measurement (`scalebench`).
//!
//! The corpus is the e-commerce generator ([`EcommerceWorkload`]) scaled
//! along its product axis — the dimension that grows every substrate at
//! once (relational rows, JSON orders, report/news/review documents,
//! graph nodes, dense vectors). The query mix is drawn from the
//! workload's own QA benchmark with replacement under a seeded RNG, so a
//! `(size, seed, queries)` triple names one exact batch: the same
//! questions, in the same order, at every thread count.

use detkit::Rng;

use crate::ecommerce::{EcommerceConfig, EcommerceWorkload};

/// Parameters of one scale tier.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Number of products (the scaling axis). Every substrate grows
    /// linearly in it: `products × quarters` sales rows and report
    /// documents, `products` news documents, `products × 2` reviews.
    pub products: usize,
    /// Quarters of sales history per product.
    pub quarters: usize,
    /// Queries in the benchmark batch (sampled from the QA set with
    /// replacement).
    pub queries: usize,
    /// Master seed: drives both corpus generation and query sampling.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self { products: 16, quarters: 4, queries: 64, seed: 0x5CA1E }
    }
}

/// A generated scale tier: the corpus plus its benchmark query batch.
#[derive(Debug, Clone)]
pub struct ScaleWorkload {
    /// Parameters used.
    pub config: ScaleConfig,
    /// The underlying corpus (all three modalities + lexicon + QA).
    pub data: EcommerceWorkload,
    /// The benchmark batch, in answer order.
    pub queries: Vec<String>,
}

impl ScaleWorkload {
    /// Generates the tier deterministically from the config.
    pub fn generate(config: ScaleConfig) -> Self {
        assert!(config.products >= 4, "need at least 4 products (ecommerce floor)");
        assert!(config.queries >= 1, "need at least 1 query");
        // QA pool grows with the corpus so larger tiers also diversify
        // the query mix instead of replaying a tiny set more often.
        let qa_per_category = (config.products / 4).max(2);
        let data = EcommerceWorkload::generate(EcommerceConfig {
            products: config.products,
            quarters: config.quarters,
            reviews_per_product: 2,
            qa_per_category,
            seed: config.seed,
            name_offset: 0,
        });
        // Sampling seed is decoupled from the corpus seed so two tiers
        // sharing a seed still draw independent query streams.
        let mut rng = Rng::new(config.seed ^ 0x9E37_79B9_7F4A_7C15);
        let queries = (0..config.queries)
            .map(|_| data.qa[rng.gen_range(0..data.qa.len())].question.clone())
            .collect();
        Self { config, data, queries }
    }

    /// Total documents in the corpus (all sources).
    pub fn num_documents(&self) -> usize {
        self.data.documents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = ScaleWorkload::generate(ScaleConfig::default());
        let b = ScaleWorkload::generate(ScaleConfig::default());
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.data.documents, b.data.documents);
    }

    #[test]
    fn corpus_grows_with_products() {
        let small = ScaleWorkload::generate(ScaleConfig { products: 8, ..Default::default() });
        let large = ScaleWorkload::generate(ScaleConfig { products: 32, ..Default::default() });
        assert!(large.num_documents() > small.num_documents());
        assert!(large.data.qa.len() > small.data.qa.len());
        let rows = |w: &ScaleWorkload| w.data.db.table("sales").unwrap().num_rows();
        assert_eq!(rows(&large), 32 * large.config.quarters);
        assert!(rows(&large) > rows(&small));
    }

    #[test]
    fn query_batch_has_requested_size_and_draws_from_qa() {
        let w = ScaleWorkload::generate(ScaleConfig { queries: 40, ..Default::default() });
        assert_eq!(w.queries.len(), 40);
        for q in &w.queries {
            assert!(w.data.qa.iter().any(|item| &item.question == q), "unknown query {q}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScaleWorkload::generate(ScaleConfig { seed: 1, ..Default::default() });
        let b = ScaleWorkload::generate(ScaleConfig { seed: 2, ..Default::default() });
        assert_ne!(a.queries, b.queries);
    }
}
