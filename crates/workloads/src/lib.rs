//! # unisem-workloads
//!
//! Seeded synthetic heterogeneous corpora with **gold labels** — the
//! substitution for the proprietary datasets (EHRs, e-commerce lakes) the
//! paper motivates with (DESIGN.md §2).
//!
//! Each workload produces all three modalities plus ground truth:
//!
//! - relational tables (for the structured substrate),
//! - JSON collections (semi-structured),
//! - free-text documents (unstructured) whose *content is derived from the
//!   same gold facts*, so cross-modal questions have verifiable answers,
//! - a domain [`unisem_slm::Lexicon`] (the SLM's world knowledge),
//! - [`qa::QaItem`]s with typed gold answers spanning lookup, aggregate,
//!   threshold, comparative, cross-modal, and unanswerable categories.
//!
//! Everything is deterministic in the seed.

pub mod ecommerce;
pub mod healthcare;
pub mod names;
pub mod qa;
pub mod reports;
pub mod scale;

pub use ecommerce::{EcommerceConfig, EcommerceWorkload};
pub use healthcare::{HealthcareConfig, HealthcareWorkload};
pub use qa::{answer_matches, GoldAnswer, QaCategory, QaItem};
pub use reports::{GoldFact, ReportCorpus};
pub use scale::{ScaleConfig, ScaleWorkload};
