//! Deterministic name pools.
//!
//! All generators draw names by index (modulo pool arithmetic), so a given
//! seed and size always yield the same inventory.

/// Product name components.
const PRODUCT_ADJ: &[&str] = &[
    "Aero", "Nova", "Pulse", "Zen", "Flux", "Echo", "Terra", "Volt", "Luma", "Orbit", "Quanta",
    "Vertex", "Drift", "Ember", "Frost", "Gale", "Halo", "Iris", "Jolt", "Krypt",
];
const PRODUCT_NOUN: &[&str] = &[
    "Widget",
    "Speaker",
    "Lamp",
    "Kettle",
    "Router",
    "Drone",
    "Monitor",
    "Blender",
    "Charger",
    "Camera",
    "Headset",
    "Keyboard",
    "Scale",
    "Fan",
    "Heater",
    "Purifier",
    "Tracker",
    "Sensor",
    "Printer",
    "Projector",
];

/// Manufacturer name pool.
const MAKERS: &[&str] = &[
    "Acme Corp",
    "Initech Labs",
    "Globex Inc",
    "Umbra Ltd",
    "Vortex Group",
    "Zenith Co",
    "Pinnacle Inc",
    "Apex Labs",
    "Stellar Corp",
    "Nimbus Ltd",
];

/// Category pool.
const CATEGORIES: &[&str] = &["electronics", "kitchen", "fitness", "office", "outdoors", "home"];

/// Person given/family names.
const GIVEN: &[&str] = &[
    "Alice", "Bruno", "Clara", "Dmitri", "Elena", "Farid", "Grace", "Hiro", "Ingrid", "Jonas",
    "Karim", "Lena", "Marco", "Nadia", "Omar", "Priya", "Quinn", "Rosa", "Sofia", "Tomas",
];
const FAMILY: &[&str] = &[
    "Anders", "Brandt", "Chen", "Duarte", "Egede", "Fischer", "Garcia", "Hoffman", "Ivanov",
    "Jensen", "Kovacs", "Larsen", "Meyer", "Novak", "Okafor", "Petrov", "Quist", "Rossi", "Silva",
    "Tanaka",
];

/// Drug name syllables (suffixes chosen so NER's drug heuristics are NOT
/// triggered — recognition must come from the lexicon, as with a real SLM).
const DRUG_HEAD: &[&str] = &["Cor", "Vel", "Zan", "Mel", "Tor", "Lex", "Nor", "Pax", "Rin", "Sol"];
const DRUG_TAIL: &[&str] =
    &["adrine", "oxil", "ivan", "umab", "eprine", "axin", "olol", "idone", "etine", "avir"];

/// Medical condition pool.
const CONDITIONS: &[&str] = &[
    "migraine",
    "hypertension",
    "insomnia",
    "asthma",
    "arthritis",
    "eczema",
    "anemia",
    "bronchitis",
    "dermatitis",
    "neuralgia",
];

/// Nth product name ("Aero Widget", "Nova Speaker", …).
pub fn product(n: usize) -> String {
    let adj = PRODUCT_ADJ[n % PRODUCT_ADJ.len()];
    let noun = PRODUCT_NOUN[(n / PRODUCT_ADJ.len() + n) % PRODUCT_NOUN.len()];
    format!("{adj} {noun}")
}

/// Nth manufacturer name.
pub fn manufacturer(n: usize) -> String {
    MAKERS[n % MAKERS.len()].to_string()
}

/// Nth category.
pub fn category(n: usize) -> String {
    CATEGORIES[n % CATEGORIES.len()].to_string()
}

/// Nth person name.
pub fn person(n: usize) -> String {
    let g = GIVEN[n % GIVEN.len()];
    let f = FAMILY[(n / GIVEN.len() + n) % FAMILY.len()];
    format!("{g} {f}")
}

/// Nth patient identifier ("Patient P-104").
pub fn patient_id(n: usize) -> String {
    format!("P-{}", 100 + n)
}

/// Nth drug name ("Coradrine", "Veloxil", …).
pub fn drug(n: usize) -> String {
    let head = DRUG_HEAD[n % DRUG_HEAD.len()];
    let tail = DRUG_TAIL[(n / DRUG_HEAD.len() + n) % DRUG_TAIL.len()];
    format!("{head}{tail}")
}

/// Nth condition.
pub fn condition(n: usize) -> String {
    CONDITIONS[n % CONDITIONS.len()].to_string()
}

/// Quarter label for index `q` (0-based) starting at Q1 2023.
pub fn quarter(q: usize) -> String {
    let year = 2023 + q / 4;
    format!("Q{} {}", q % 4 + 1, year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_prefix() {
        assert_eq!(product(3), product(3));
        let names: std::collections::HashSet<String> = (0..40).map(product).collect();
        assert!(names.len() >= 35, "mostly distinct: {}", names.len());
    }

    #[test]
    fn drugs_distinct() {
        let names: std::collections::HashSet<String> = (0..30).map(drug).collect();
        assert!(names.len() >= 25);
    }

    #[test]
    fn people_have_two_parts() {
        assert_eq!(person(0).split_whitespace().count(), 2);
        let names: std::collections::HashSet<String> = (0..50).map(person).collect();
        assert!(names.len() >= 45);
    }

    #[test]
    fn quarters_roll_over_years() {
        assert_eq!(quarter(0), "Q1 2023");
        assert_eq!(quarter(3), "Q4 2023");
        assert_eq!(quarter(4), "Q1 2024");
        assert_eq!(quarter(7), "Q4 2024");
    }

    #[test]
    fn patient_ids_stable() {
        assert_eq!(patient_id(4), "P-104");
    }
}
