//! QA benchmark items and answer checking.

use std::fmt;

/// Category of a QA item — drives per-category accuracy breakdowns (E1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QaCategory {
    /// Fact lookup about one entity, answerable from one text passage.
    SingleEntityLookup,
    /// Aggregate over structured rows ("total sales of X").
    Aggregate,
    /// Threshold/multi-entity selection ("which products grew > 15%?").
    MultiEntityFilter,
    /// Comparison across entities ("which of A, B rated higher?").
    Comparative,
    /// Requires joining text-derived facts with structured rows.
    CrossModal,
    /// No supporting evidence exists in the corpus.
    Unanswerable,
}

impl QaCategory {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            QaCategory::SingleEntityLookup => "lookup",
            QaCategory::Aggregate => "aggregate",
            QaCategory::MultiEntityFilter => "multi_entity",
            QaCategory::Comparative => "comparative",
            QaCategory::CrossModal => "cross_modal",
            QaCategory::Unanswerable => "unanswerable",
        }
    }

    /// All categories in report order.
    pub const ALL: [QaCategory; 6] = [
        QaCategory::SingleEntityLookup,
        QaCategory::Aggregate,
        QaCategory::MultiEntityFilter,
        QaCategory::Comparative,
        QaCategory::CrossModal,
        QaCategory::Unanswerable,
    ];
}

/// The gold answer of a QA item.
#[derive(Debug, Clone, PartialEq)]
pub enum GoldAnswer {
    /// A numeric answer with relative tolerance.
    Numeric {
        /// Expected value.
        value: f64,
        /// Relative tolerance (e.g. 0.02 = ±2%).
        tolerance: f64,
    },
    /// Any of these strings appearing (case-insensitive) counts as correct.
    AnyOf(Vec<String>),
    /// All of these strings must appear (entity list answers).
    AllOf(Vec<String>),
    /// The system should abstain / flag uncertainty.
    Abstain,
}

/// One benchmark question.
#[derive(Debug, Clone, PartialEq)]
pub struct QaItem {
    /// Stable id within the workload.
    pub id: usize,
    /// The natural-language question.
    pub question: String,
    /// Gold answer.
    pub gold: GoldAnswer,
    /// Category.
    pub category: QaCategory,
    /// Document ids (in the workload's docstore) containing supporting
    /// evidence — retrieval ground truth for E6.
    pub gold_doc_ids: Vec<usize>,
    /// Canonical entity names the question is about.
    pub entities: Vec<String>,
}

impl fmt::Display for QaItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.category.label(), self.question)
    }
}

/// Extracts every standalone number from text (commas stripped). Digits
/// glued to letters ("Q3", "P-101") are not numbers.
fn all_numbers(text: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut prev_alpha = false;
    for c in text.chars().chain(std::iter::once(' ')) {
        let starts_or_continues = c.is_ascii_digit()
            || ((c == '.' || c == ',') && !current.is_empty())
            || (current.is_empty() && c == '-');
        if starts_or_continues && !(current.is_empty() && prev_alpha) {
            current.push(c);
        } else {
            if !current.is_empty() {
                // A sentence-final period or comma may have been absorbed.
                let cleaned = current.replace(',', "");
                let cleaned = cleaned.trim_end_matches('.');
                if let Ok(v) = cleaned.parse::<f64>() {
                    out.push(v);
                }
                current.clear();
            }
            // The "attached to a word" block propagates through hyphens and
            // digits ("P-101" stays blocked end to end).
            prev_alpha = c.is_alphabetic() || (prev_alpha && (c == '-' || c.is_ascii_digit()));
            continue;
        }
        prev_alpha = c.is_alphabetic();
    }
    out
}

/// Checks a system answer against a gold answer.
///
/// - `Numeric`: the first number in the answer must be within tolerance,
/// - `AnyOf` / `AllOf`: case-insensitive substring checks,
/// - `Abstain`: the answer must be empty or an explicit abstention marker.
pub fn answer_matches(gold: &GoldAnswer, answer: &str) -> bool {
    let lower = answer.to_lowercase();
    match gold {
        GoldAnswer::Numeric { value, tolerance } => {
            let tol = (value.abs() * tolerance).max(1e-9);
            all_numbers(answer).iter().any(|v| (v - value).abs() <= tol)
        }
        GoldAnswer::AnyOf(opts) => opts.iter().any(|o| lower.contains(&o.to_lowercase())),
        GoldAnswer::AllOf(parts) => parts.iter().all(|p| lower.contains(&p.to_lowercase())),
        GoldAnswer::Abstain => {
            lower.is_empty()
                || lower.contains("cannot")
                || lower.contains("unknown")
                || lower.contains("abstain")
                || lower.contains("no answer")
                || lower.contains("uncertain")
                || lower.contains("inconclusive")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_tolerance() {
        let g = GoldAnswer::Numeric { value: 100.0, tolerance: 0.02 };
        assert!(answer_matches(&g, "the total is 101"));
        assert!(answer_matches(&g, "The answer is 99.5."));
        assert!(!answer_matches(&g, "the total is 110"));
        assert!(!answer_matches(&g, "no number here"));
    }

    #[test]
    fn numeric_with_commas_and_money() {
        let g = GoldAnswer::Numeric { value: 15000.0, tolerance: 0.01 };
        assert!(answer_matches(&g, "sales reached $15,000 in Q2"));
    }

    #[test]
    fn any_of_case_insensitive() {
        let g = GoldAnswer::AnyOf(vec!["Acme Corp".into()]);
        assert!(answer_matches(&g, "the maker is acme corp."));
        assert!(!answer_matches(&g, "the maker is initech"));
    }

    #[test]
    fn all_of_requires_every_part() {
        let g = GoldAnswer::AllOf(vec!["alpha".into(), "beta".into()]);
        assert!(answer_matches(&g, "Both Alpha and Beta qualified"));
        assert!(!answer_matches(&g, "only alpha qualified"));
    }

    #[test]
    fn abstain_markers() {
        let g = GoldAnswer::Abstain;
        assert!(answer_matches(&g, ""));
        assert!(answer_matches(&g, "It cannot be determined"));
        assert!(answer_matches(&g, "results are inconclusive"));
        assert!(!answer_matches(&g, "the answer is 42"));
    }

    #[test]
    fn number_extraction() {
        assert_eq!(all_numbers("rose 20% to 500"), vec![20.0, 500.0]);
        assert_eq!(all_numbers("$1,234.50 total"), vec![1234.5]);
        assert_eq!(all_numbers("minus -5 degrees"), vec![-5.0]);
        assert!(all_numbers("none").is_empty());
        // Digits glued to letters are identifiers, not numbers.
        assert_eq!(all_numbers("In Q2 2023, sales rose 7.3%"), vec![2023.0, 7.3]);
        assert!(all_numbers("Patient P-101 improved").is_empty());
    }

    #[test]
    fn numeric_matches_any_number() {
        let g = GoldAnswer::Numeric { value: 7.3, tolerance: 0.02 };
        assert!(answer_matches(&g, "In Q2 2023, sales increased 7.3% to $6170."));
        let g = GoldAnswer::Numeric { value: 9.9, tolerance: 0.02 };
        assert!(!answer_matches(&g, "In Q2 2023, sales increased 7.3% to $6170."));
    }

    #[test]
    fn category_labels_stable() {
        assert_eq!(QaCategory::CrossModal.label(), "cross_modal");
        assert_eq!(QaCategory::ALL.len(), 6);
    }
}
