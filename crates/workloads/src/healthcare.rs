//! Healthcare EHR workload (the paper's §I motivating scenario: clinical
//! trial tables + unstructured clinical notes and patient forums).
//!
//! Gold-fact-consistent modalities:
//!
//! - `trials` (drug, condition, efficacy, dosage_mg) and `patients`
//!   (patient, age, condition) relational tables,
//! - `labs` JSON collection,
//! - clinical-note documents ("Patient P-101 received Coradrine on
//!   2024-02-03. The migraine improved within 9 days."),
//! - forum-post documents carrying side-effect reports,
//! - QA across all six categories, including the paper's flagship
//!   Multi-Entity example: comparing trial efficacy (structured) with
//!   patient-reported side effects (unstructured).

use detkit::Rng;

use unisem_docstore::DocStore;
use unisem_relstore::{DataType, Database, Date, Schema, Table, Value};
use unisem_semistore::{JsonValue, SemiStore};
use unisem_slm::ner::EntityKind;
use unisem_slm::Lexicon;

use crate::names;
use crate::qa::{GoldAnswer, QaCategory, QaItem};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct HealthcareConfig {
    /// Number of drugs.
    pub drugs: usize,
    /// Number of patients.
    pub patients: usize,
    /// Trials per drug (different dosages).
    pub trials_per_drug: usize,
    /// QA items per category.
    pub qa_per_category: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for HealthcareConfig {
    fn default() -> Self {
        Self { drugs: 8, patients: 16, trials_per_drug: 3, qa_per_category: 5, seed: 0x4EA17 }
    }
}

/// Side-effect pool reported in forum posts.
const SIDE_EFFECTS: &[&str] =
    &["drowsiness", "nausea", "dizziness", "dry mouth", "fatigue", "restlessness"];

/// The generated workload.
#[derive(Debug, Clone)]
pub struct HealthcareWorkload {
    /// Parameters used.
    pub config: HealthcareConfig,
    /// Relational substrate: `trials`, `patients`.
    pub db: Database,
    /// Semi-structured substrate: `labs` collection.
    pub semi: SemiStore,
    /// Unstructured documents in docstore order.
    pub documents: Vec<crate::ecommerce::DocSpec>,
    /// Domain lexicon.
    pub lexicon: Lexicon,
    /// QA benchmark.
    pub qa: Vec<QaItem>,
    /// Gold: average efficacy per drug.
    pub gold_efficacy: Vec<f64>,
    /// Gold: condition per drug.
    pub gold_condition: Vec<String>,
    /// Gold: drug received per patient.
    pub gold_patient_drug: Vec<usize>,
    /// Gold: side effect per drug.
    pub gold_side_effect: Vec<String>,
}

impl HealthcareWorkload {
    /// Generates the workload deterministically.
    pub fn generate(config: HealthcareConfig) -> Self {
        assert!(config.drugs >= 4, "need at least 4 drugs");
        assert!(config.patients >= 4, "need at least 4 patients");
        let mut rng = Rng::new(config.seed);
        let nd = config.drugs;
        let np = config.patients;

        let gold_condition: Vec<String> = (0..nd).map(|i| names::condition(i % 6)).collect();
        let gold_side_effect: Vec<String> =
            (0..nd).map(|i| SIDE_EFFECTS[i % SIDE_EFFECTS.len()].to_string()).collect();

        // ---- trials ----
        let mut trials = Table::empty(Schema::of(&[
            ("drug", DataType::Str),
            ("condition", DataType::Str),
            ("efficacy", DataType::Float),
            ("dosage_mg", DataType::Int),
        ]));
        let mut gold_efficacy = vec![0.0; nd];
        for i in 0..nd {
            let base = rng.gen_range(40..90) as f64;
            let mut total = 0.0;
            for t in 0..config.trials_per_drug {
                let eff = (base + rng.gen_range(-50..50) as f64 / 10.0).clamp(5.0, 99.0);
                let eff = (eff * 10.0).round() / 10.0;
                total += eff;
                trials
                    .push_row(vec![
                        Value::str(names::drug(i)),
                        Value::str(gold_condition[i].clone()),
                        Value::float(eff),
                        Value::Int((t as i64 + 1) * 10),
                    ])
                    .expect("schema fixed");
            }
            gold_efficacy[i] = {
                let avg = total / config.trials_per_drug as f64;
                (avg * 100.0).round() / 100.0
            };
        }

        // ---- patients ----
        let mut patients = Table::empty(Schema::of(&[
            ("patient", DataType::Str),
            ("age", DataType::Int),
            ("condition", DataType::Str),
        ]));
        let gold_patient_drug: Vec<usize> = (0..np).map(|k| k % nd).collect();
        for k in 0..np {
            patients
                .push_row(vec![
                    Value::str(names::patient_id(k)),
                    Value::Int(rng.gen_range(18..90i64)),
                    Value::str(gold_condition[gold_patient_drug[k]].clone()),
                ])
                .expect("schema fixed");
        }

        let mut db = Database::new();
        db.create_table("trials", trials).expect("fresh db");
        db.create_table("patients", patients).expect("fresh db");

        // ---- labs JSON ----
        let mut semi = SemiStore::new();
        for k in 0..np {
            semi.insert(
                "labs",
                JsonValue::object([
                    ("patient", JsonValue::String(names::patient_id(k))),
                    ("marker", JsonValue::String("crp".to_string())),
                    ("value", JsonValue::Number(rng.gen_range(1..120) as f64 / 10.0)),
                    ("date", JsonValue::String(format!("2024-0{}-1{}", k % 9 + 1, k % 9))),
                ]),
            );
        }

        // ---- documents ----
        let mut documents = Vec::new();
        // Clinical notes: doc id = k.
        for k in 0..np {
            let patient = names::patient_id(k);
            let drug = names::drug(gold_patient_drug[k]);
            let condition = &gold_condition[gold_patient_drug[k]];
            let date = Date::new(2024, (k % 12 + 1) as u8, (k % 27 + 1) as u8).expect("valid");
            let days = rng.gen_range(3..21);
            documents.push(crate::ecommerce::DocSpec {
                title: format!("note {patient}"),
                text: format!(
                    "Patient {patient} received {drug} on {date}. \
                     The {condition} improved within {days} days. \
                     Patient {patient} tolerated {drug} well."
                ),
                source: "clinical_note".to_string(),
            });
        }
        // Forum posts: doc id = np + i.
        let forum_doc = |i: usize| np + i;
        for i in 0..nd {
            let drug = names::drug(i);
            let effect = &gold_side_effect[i];
            documents.push(crate::ecommerce::DocSpec {
                title: format!("forum {drug}"),
                text: format!(
                    "I started {drug} last month and the main problem was {effect}. \
                     Several forum users taking {drug} also reported {effect}."
                ),
                source: "forum".to_string(),
            });
        }

        // ---- lexicon ----
        let mut lexicon = Lexicon::new();
        for i in 0..nd {
            lexicon.add(&names::drug(i), EntityKind::Drug);
        }
        for c in gold_condition.iter() {
            lexicon.add(c, EntityKind::Condition);
        }
        for e in SIDE_EFFECTS {
            lexicon.add(e, EntityKind::Condition);
        }
        for k in 0..np {
            lexicon.add(&format!("Patient {}", names::patient_id(k)), EntityKind::Person);
            lexicon.add(&names::patient_id(k), EntityKind::Person);
        }

        // ---- QA ----
        let mut qa = Vec::new();
        let mut next_id = 0usize;
        let mut push = |qa: &mut Vec<QaItem>,
                        question: String,
                        gold,
                        category,
                        docs: Vec<usize>,
                        ents: Vec<String>| {
            qa.push(QaItem {
                id: {
                    let id = next_id;
                    next_id += 1;
                    id
                },
                question,
                gold,
                category,
                gold_doc_ids: docs,
                entities: ents,
            });
        };

        for k in 0..config.qa_per_category {
            let pk = (k * 5 + 1) % np;
            let patient = names::patient_id(pk);
            let drug_idx = gold_patient_drug[pk];
            let drug = names::drug(drug_idx);

            // Lookup: which drug did a patient receive (only in notes).
            push(
                &mut qa,
                format!("Which drug did Patient {patient} receive?"),
                GoldAnswer::AnyOf(vec![drug.clone()]),
                QaCategory::SingleEntityLookup,
                vec![pk],
                vec![patient.to_lowercase()],
            );

            // Aggregate: average efficacy of a drug (trials table).
            let di = (k * 3 + 1) % nd;
            push(
                &mut qa,
                format!("What is the average efficacy of {}?", names::drug(di)),
                GoldAnswer::Numeric { value: gold_efficacy[di], tolerance: 0.02 },
                QaCategory::Aggregate,
                vec![],
                vec![names::drug(di).to_lowercase()],
            );

            // Multi-entity filter: drugs above an efficacy threshold.
            let mut effs: Vec<(usize, f64)> = gold_efficacy.iter().cloned().enumerate().collect();
            effs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let take = 1 + k % 3.min(nd - 1);
            let threshold = ((effs[take - 1].1 + effs[take].1) / 2.0).round();
            let qualifying: Vec<String> =
                effs.iter().filter(|(_, e)| *e > threshold).map(|(i, _)| names::drug(*i)).collect();
            if !qualifying.is_empty() && qualifying.len() < nd {
                push(
                    &mut qa,
                    format!("Which drugs had an average efficacy above {threshold}?"),
                    GoldAnswer::AllOf(qualifying.clone()),
                    QaCategory::MultiEntityFilter,
                    vec![],
                    qualifying.iter().map(|s| s.to_lowercase()).collect(),
                );
            }

            // Comparative: two drugs by efficacy.
            let a = (k * 7) % nd;
            let b = (k * 7 + 3) % nd;
            if a != b {
                let (da, db_) = (names::drug(a), names::drug(b));
                let winner =
                    if gold_efficacy[a] >= gold_efficacy[b] { da.clone() } else { db_.clone() };
                push(
                    &mut qa,
                    format!(
                        "Compare the efficacy of {da} and {db_}: which drug is more effective?"
                    ),
                    GoldAnswer::AnyOf(vec![winner]),
                    QaCategory::Comparative,
                    vec![],
                    vec![da.to_lowercase(), db_.to_lowercase()],
                );
            }

            // Cross-modal: side effects reported for a drug (forum text),
            // asked about the drug identified via the trials table framing.
            let ds = (k * 2 + 1) % nd;
            push(
                &mut qa,
                format!("What side effect did forum users report for {}?", names::drug(ds)),
                GoldAnswer::AnyOf(vec![gold_side_effect[ds].clone()]),
                QaCategory::CrossModal,
                vec![forum_doc(ds)],
                vec![names::drug(ds).to_lowercase()],
            );

            // Unanswerable: nonexistent drug.
            push(
                &mut qa,
                format!("What is the average efficacy of Fantasmol{k}?"),
                GoldAnswer::Abstain,
                QaCategory::Unanswerable,
                vec![],
                vec![format!("fantasmol{k}")],
            );
        }

        Self {
            config,
            db,
            semi,
            documents,
            lexicon,
            qa,
            gold_efficacy,
            gold_condition,
            gold_patient_drug,
            gold_side_effect,
        }
    }

    /// Builds a [`DocStore`] with the workload documents.
    pub fn docstore(&self) -> DocStore {
        let mut d = DocStore::default();
        for spec in &self.documents {
            d.add_document(spec.title.clone(), spec.text.clone(), spec.source.clone());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HealthcareWorkload {
        HealthcareWorkload::generate(HealthcareConfig {
            drugs: 5,
            patients: 8,
            trials_per_drug: 2,
            qa_per_category: 2,
            seed: 11,
        })
    }

    #[test]
    fn deterministic() {
        assert_eq!(small().documents, small().documents);
        assert_eq!(small().qa, small().qa);
    }

    #[test]
    fn trials_match_gold_efficacy() {
        let w = small();
        for i in 0..5 {
            let out =
                w.db.run_sql(&format!(
                    "SELECT AVG(efficacy) AS e FROM trials WHERE drug = '{}'",
                    names::drug(i)
                ))
                .unwrap();
            let avg = out.cell(0, 0).as_f64().unwrap();
            assert!((avg - w.gold_efficacy[i]).abs() < 0.01, "{avg} vs {}", w.gold_efficacy[i]);
        }
    }

    #[test]
    fn notes_contain_patient_drug_facts() {
        let w = small();
        for k in 0..8 {
            let note = &w.documents[k];
            assert!(note.text.contains(&names::patient_id(k)));
            assert!(note.text.contains(&names::drug(w.gold_patient_drug[k])));
        }
    }

    #[test]
    fn forum_posts_contain_side_effects() {
        let w = small();
        for i in 0..5 {
            let post = &w.documents[8 + i];
            assert!(post.text.contains(&w.gold_side_effect[i]));
            assert!(post.text.contains(&names::drug(i)));
        }
    }

    #[test]
    fn qa_all_categories() {
        let w = small();
        for cat in QaCategory::ALL {
            assert!(w.qa.iter().any(|i| i.category == cat), "missing {cat:?}");
        }
    }

    #[test]
    fn lexicon_recognizes_drugs_and_patients() {
        let w = small();
        assert!(w.lexicon.get(&names::drug(0).to_lowercase()).is_some());
        assert!(w.lexicon.get(&names::patient_id(0).to_lowercase()).is_some());
    }

    #[test]
    fn labs_flatten() {
        let w = small();
        let t = w.semi.to_table("labs").unwrap();
        assert_eq!(t.num_rows(), 8);
        assert!(t.schema().index_of("value").is_some());
    }
}
