//! E-commerce data-lake workload (the paper's §III.C motivating scenario:
//! "a large-scale e-commerce data lake with unstructured customer reviews,
//! product descriptions, and sales records").
//!
//! Modalities generated from one set of gold facts:
//!
//! - `products` / `sales` relational tables,
//! - `orders` JSON collection (semi-structured),
//! - quarterly report documents, product news documents, and customer
//!   review documents (unstructured),
//! - a QA benchmark spanning all six [`QaCategory`]s.

use detkit::Rng;

use unisem_docstore::DocStore;
use unisem_relstore::{DataType, Database, Schema, Table, Value};
use unisem_semistore::{JsonValue, SemiStore};
use unisem_slm::ner::EntityKind;
use unisem_slm::Lexicon;

use crate::names;
use crate::qa::{GoldAnswer, QaCategory, QaItem};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct EcommerceConfig {
    /// Number of products.
    pub products: usize,
    /// Number of quarters of sales history.
    pub quarters: usize,
    /// Reviews per product.
    pub reviews_per_product: usize,
    /// QA items per category.
    pub qa_per_category: usize,
    /// Master seed.
    pub seed: u64,
    /// Offset into the product-name pool: lets multiple workload instances
    /// coexist in one corpus with (mostly) disjoint entity inventories —
    /// the multi-domain data-lake setting of experiment E3.
    pub name_offset: usize,
}

impl Default for EcommerceConfig {
    fn default() -> Self {
        Self {
            products: 12,
            quarters: 4,
            reviews_per_product: 4,
            qa_per_category: 5,
            seed: 0xEC0,
            name_offset: 0,
        }
    }
}

/// A document destined for the docstore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocSpec {
    /// Title.
    pub title: String,
    /// Body text.
    pub text: String,
    /// Source tag.
    pub source: String,
}

/// The generated workload.
#[derive(Debug, Clone)]
pub struct EcommerceWorkload {
    /// Parameters used.
    pub config: EcommerceConfig,
    /// Relational substrate: `products`, `sales`.
    pub db: Database,
    /// Semi-structured substrate: `orders`, `reviews` collections.
    pub semi: SemiStore,
    /// Unstructured documents, in docstore insertion order.
    pub documents: Vec<DocSpec>,
    /// Domain lexicon for the SLM.
    pub lexicon: Lexicon,
    /// QA benchmark.
    pub qa: Vec<QaItem>,
    /// Gold: per product per quarter (amount, change_pct).
    pub gold_sales: Vec<Vec<(f64, Option<f64>)>>,
    /// Gold: manufacturer per product.
    pub gold_maker: Vec<String>,
    /// Gold: average rating per product.
    pub gold_rating: Vec<f64>,
}

impl EcommerceWorkload {
    /// Generates the workload deterministically from the config.
    pub fn generate(config: EcommerceConfig) -> Self {
        assert!(config.products >= 4, "need at least 4 products for comparative QA");
        assert!(config.quarters >= 2, "need at least 2 quarters for change_pct");
        let mut rng = Rng::new(config.seed);
        let pname = |n: usize| names::product(n + config.name_offset);
        let p = config.products;
        let q = config.quarters;
        let n_makers = (p / 3).clamp(2, 10);

        // ---- gold facts ----
        let gold_maker: Vec<String> =
            (0..p).map(|i| names::manufacturer(i % n_makers + config.name_offset)).collect();
        let mut gold_sales: Vec<Vec<(f64, Option<f64>)>> = Vec::with_capacity(p);
        for _ in 0..p {
            let mut rows = Vec::with_capacity(q);
            let mut prev = (rng.gen_range(200..900) * 10) as f64;
            rows.push((prev, None));
            for _ in 1..q {
                // Change between -30% and +40%, one decimal.
                let pct = (rng.gen_range(-300..400) as f64) / 10.0;
                let amount = (prev * (1.0 + pct / 100.0) / 10.0).round() * 10.0;
                let actual_pct = ((amount - prev) / prev * 1000.0).round() / 10.0;
                rows.push((amount, Some(actual_pct)));
                prev = amount;
            }
            gold_sales.push(rows);
        }
        let gold_rating: Vec<f64> = (0..p)
            .map(|_| (rng.gen_range(20..50) as f64) / 10.0) // 2.0..5.0
            .collect();

        // ---- relational tables ----
        let mut db = Database::new();
        let mut products_t = Table::empty(Schema::of(&[
            ("product", DataType::Str),
            ("manufacturer", DataType::Str),
            ("category", DataType::Str),
            ("price", DataType::Float),
        ]));
        for i in 0..p {
            products_t
                .push_row(vec![
                    Value::str(pname(i)),
                    Value::str(gold_maker[i].clone()),
                    Value::str(names::category(i + config.name_offset)),
                    Value::float((rng.gen_range(100..5000) as f64) / 10.0),
                ])
                .expect("schema fixed");
        }
        db.create_table("products", products_t).expect("fresh db");

        let mut sales_t = Table::empty(Schema::of(&[
            ("product", DataType::Str),
            ("quarter", DataType::Str),
            ("amount", DataType::Float),
            ("units", DataType::Int),
            ("change_pct", DataType::Float),
        ]));
        let mut units: Vec<Vec<i64>> = vec![vec![0; q]; p];
        for i in 0..p {
            for j in 0..q {
                let (amount, pct) = gold_sales[i][j];
                units[i][j] = (amount / 10.0).round() as i64;
                sales_t
                    .push_row(vec![
                        Value::str(pname(i)),
                        Value::str(names::quarter(j)),
                        Value::float(amount),
                        Value::Int(units[i][j]),
                        pct.map_or(Value::Null, Value::float),
                    ])
                    .expect("schema fixed");
            }
        }
        db.create_table("sales", sales_t).expect("fresh db");

        // ---- semi-structured: orders + review records ----
        let mut semi = SemiStore::new();
        for i in 0..p {
            for j in 0..q {
                semi.insert(
                    "orders",
                    JsonValue::object([
                        ("order_id", JsonValue::Number((i * q + j) as f64 + 1000.0)),
                        ("product", JsonValue::String(pname(i))),
                        ("quarter", JsonValue::String(names::quarter(j))),
                        ("units", JsonValue::Number(units[i][j] as f64)),
                        ("amount", JsonValue::Number(gold_sales[i][j].0)),
                    ]),
                );
            }
        }

        // ---- documents ----
        let mut documents = Vec::new();
        // Quarterly reports: doc id = i * q + j.
        let report_doc = |i: usize, j: usize| i * q + j;
        for i in 0..p {
            for j in 0..q {
                let product = pname(i);
                let quarter = names::quarter(j);
                let (amount, pct) = gold_sales[i][j];
                let text = match pct {
                    Some(pct) if pct >= 0.0 => format!(
                        "In {quarter}, {product} sales increased {pct}% to ${amount}. \
                         Customers purchased {} units of {product}.",
                        units[i][j]
                    ),
                    Some(pct) => format!(
                        "In {quarter}, {product} sales decreased {}% to ${amount}. \
                         Customers purchased {} units of {product}.",
                        -pct, units[i][j]
                    ),
                    None => format!(
                        "{product} sales reached ${amount} in {quarter}. \
                         Customers purchased {} units of {product}.",
                        units[i][j]
                    ),
                };
                documents.push(DocSpec {
                    title: format!("{product} {quarter} report"),
                    text,
                    source: "report".to_string(),
                });
            }
        }
        // News docs: doc id = p*q + i.
        let news_doc = |i: usize| p * q + i;
        for i in 0..p {
            let product = pname(i);
            let maker = &gold_maker[i];
            documents.push(DocSpec {
                title: format!("{product} launch"),
                text: format!(
                    "{maker} launched the {product} this year. The {product} is \
                     manufactured by {maker} and targets the {} segment.",
                    names::category(i + config.name_offset)
                ),
                source: "news".to_string(),
            });
        }
        // Review docs: doc id = p*q + p + i*reviews + r.
        const GOOD: &[&str] = &[
            "The build quality is excellent and it works flawlessly.",
            "Battery life is outstanding and setup was easy.",
            "Performs beyond expectations, highly recommended.",
        ];
        const BAD: &[&str] = &[
            "It stopped working after a week and support was unhelpful.",
            "The build feels cheap and the manual is confusing.",
            "Constant glitches made it unusable, very disappointing.",
        ];
        for i in 0..p {
            let product = pname(i);
            for r in 0..config.reviews_per_product {
                // Individual ratings centered on the gold average.
                let jitter = rng.gen_range(-10..=10) as f64 / 10.0;
                let rating = (gold_rating[i] + jitter).clamp(1.0, 5.0);
                let rating = (rating * 2.0).round() / 2.0;
                let body = if rating >= 3.5 { GOOD[r % GOOD.len()] } else { BAD[r % BAD.len()] };
                documents.push(DocSpec {
                    title: format!("{product} review {r}"),
                    text: format!("{product} review: {body} Rating: {rating} out of 5."),
                    source: "review".to_string(),
                });
                semi.insert(
                    "reviews",
                    JsonValue::object([
                        ("product", JsonValue::String(product.clone())),
                        ("rating", JsonValue::Number(rating)),
                    ]),
                );
            }
        }

        // ---- lexicon ----
        let mut lexicon = Lexicon::new();
        for i in 0..p {
            lexicon.add(&pname(i), EntityKind::Product);
        }
        for m in gold_maker.iter() {
            lexicon.add(m, EntityKind::Organization);
        }
        for i in 0..6 {
            lexicon.add(&names::category(i + config.name_offset), EntityKind::Category);
        }

        // ---- QA ----
        let mut qa = Vec::new();
        let mut next_id = 0usize;
        let mut push = |qa: &mut Vec<QaItem>,
                        question: String,
                        gold,
                        category,
                        docs: Vec<usize>,
                        ents: Vec<String>| {
            qa.push(QaItem {
                id: {
                    let id = next_id;
                    next_id += 1;
                    id
                },
                question,
                gold,
                category,
                gold_doc_ids: docs,
                entities: ents,
            });
        };

        for k in 0..config.qa_per_category {
            let i = (k * 3 + 1) % p;
            let product = pname(i);

            // Lookup: manufacturer.
            push(
                &mut qa,
                format!("Which manufacturer makes the {product}?"),
                GoldAnswer::AnyOf(vec![gold_maker[i].clone()]),
                QaCategory::SingleEntityLookup,
                vec![news_doc(i)],
                vec![product.to_lowercase()],
            );

            // Aggregate: total sales across quarters.
            let total: f64 = gold_sales[i].iter().map(|(a, _)| a).sum();
            push(
                &mut qa,
                format!("What was the total sales amount of {product} across all quarters?"),
                GoldAnswer::Numeric { value: total, tolerance: 0.02 },
                QaCategory::Aggregate,
                (0..q).map(|j| report_doc(i, j)).collect(),
                vec![product.to_lowercase()],
            );

            // Multi-entity filter: growth above threshold in a quarter.
            let j = 1 + k % (q - 1);
            let quarter = names::quarter(j);
            let mut changes: Vec<(usize, f64)> =
                (0..p).filter_map(|x| gold_sales[x][j].1.map(|c| (x, c))).collect();
            changes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let take = 1 + k % 3.min(p - 1);
            // Threshold halfway between the take-th and (take+1)-th change.
            let threshold = if take < changes.len() {
                ((changes[take - 1].1 + changes[take].1) / 2.0).round()
            } else {
                0.0
            };
            let qualifying: Vec<String> =
                changes.iter().filter(|(_, c)| *c > threshold).map(|(x, _)| pname(*x)).collect();
            if !qualifying.is_empty() && qualifying.len() < p {
                push(
                    &mut qa,
                    format!(
                        "Which products had a sales increase of more than {threshold}% in {quarter}?"
                    ),
                    GoldAnswer::AllOf(qualifying.clone()),
                    QaCategory::MultiEntityFilter,
                    changes
                        .iter()
                        .filter(|(_, c)| *c > threshold)
                        .map(|(x, _)| report_doc(*x, j))
                        .collect(),
                    qualifying.iter().map(|s| s.to_lowercase()).collect(),
                );
            }

            // Comparative: total sales of two products.
            let a = (k * 5) % p;
            let b = (k * 5 + 2) % p;
            if a != b {
                let ta: f64 = gold_sales[a].iter().map(|(x, _)| x).sum();
                let tb: f64 = gold_sales[b].iter().map(|(x, _)| x).sum();
                let (pa, pb) = (pname(a), pname(b));
                let winner = if ta >= tb { pa.clone() } else { pb.clone() };
                push(
                    &mut qa,
                    format!("Compare the total sales of {pa} and {pb}: which product sold more?"),
                    GoldAnswer::AnyOf(vec![winner]),
                    QaCategory::Comparative,
                    (0..q).flat_map(|j| [report_doc(a, j), report_doc(b, j)]).collect(),
                    vec![pa.to_lowercase(), pb.to_lowercase()],
                );
            }

            // Cross-modal: the change stated in a specific report.
            let j2 = 1 + (k + 1) % (q - 1);
            if let Some(pct) = gold_sales[i][j2].1 {
                push(
                    &mut qa,
                    format!(
                        "By what percentage did {product} sales change in {} according to the quarterly report?",
                        names::quarter(j2)
                    ),
                    GoldAnswer::Numeric { value: pct.abs(), tolerance: 0.02 },
                    QaCategory::CrossModal,
                    vec![report_doc(i, j2)],
                    vec![product.to_lowercase()],
                );
            }

            // Unanswerable: a product that does not exist.
            push(
                &mut qa,
                format!("What was the total sales of the Phantom Gizmo {k} in Q2 2024?"),
                GoldAnswer::Abstain,
                QaCategory::Unanswerable,
                vec![],
                vec![format!("phantom gizmo {k}")],
            );
        }

        Self { config, db, semi, documents, lexicon, qa, gold_sales, gold_maker, gold_rating }
    }

    /// Builds a [`DocStore`] containing the workload documents in order.
    pub fn docstore(&self) -> DocStore {
        let mut d = DocStore::default();
        for spec in &self.documents {
            d.add_document(spec.title.clone(), spec.text.clone(), spec.source.clone());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qa::answer_matches;

    fn small() -> EcommerceWorkload {
        EcommerceWorkload::generate(EcommerceConfig {
            products: 6,
            quarters: 3,
            reviews_per_product: 2,
            qa_per_category: 2,
            seed: 42,
            name_offset: 0,
        })
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.qa, b.qa);
        assert_eq!(a.gold_sales, b.gold_sales);
    }

    #[test]
    fn tables_consistent_with_gold() {
        let w = small();
        let sales = w.db.table("sales").unwrap();
        assert_eq!(sales.num_rows(), 6 * 3);
        // Cross-check one gold total against SQL.
        let p0 = names::product(0);
        let out =
            w.db.run_sql(&format!("SELECT SUM(amount) AS t FROM sales WHERE product = '{p0}'"))
                .unwrap();
        let expected: f64 = w.gold_sales[0].iter().map(|(a, _)| a).sum();
        assert_eq!(out.cell(0, 0), &Value::Float(expected));
    }

    #[test]
    fn change_pct_consistent() {
        let w = small();
        // change_pct in table for q>=1 equals gold.
        let sales = w.db.table("sales").unwrap();
        let pidx = sales.schema().index_of("product").unwrap();
        let qidx = sales.schema().index_of("quarter").unwrap();
        let cidx = sales.schema().index_of("change_pct").unwrap();
        for r in 0..sales.num_rows() {
            let product = sales.cell(r, pidx).as_str().unwrap().to_string();
            let quarter = sales.cell(r, qidx).as_str().unwrap();
            let i = (0..6).find(|&i| names::product(i) == product).unwrap();
            let j = (0..3).find(|&j| names::quarter(j) == quarter).unwrap();
            match w.gold_sales[i][j].1 {
                Some(pct) => assert_eq!(sales.cell(r, cidx), &Value::Float(pct)),
                None => assert!(sales.cell(r, cidx).is_null()),
            }
        }
    }

    #[test]
    fn report_text_contains_gold_numbers() {
        let w = small();
        for (i, per_q) in w.gold_sales.iter().enumerate() {
            for (j, (amount, pct)) in per_q.iter().enumerate() {
                let doc = &w.documents[i * 3 + j];
                assert!(doc.text.contains(&format!("${amount}")), "{}", doc.text);
                if let Some(pct) = pct {
                    assert!(
                        doc.text.contains(&format!("{}%", pct.abs())),
                        "{} missing {}%",
                        doc.text,
                        pct.abs()
                    );
                }
            }
        }
    }

    #[test]
    fn qa_gold_docs_valid_and_text_supports_answers() {
        let w = small();
        for item in &w.qa {
            for &d in &item.gold_doc_ids {
                assert!(d < w.documents.len());
            }
            // Lookup answers literally appear in their gold documents.
            if item.category == QaCategory::SingleEntityLookup {
                if let GoldAnswer::AnyOf(opts) = &item.gold {
                    let doc_text = &w.documents[item.gold_doc_ids[0]].text;
                    assert!(opts.iter().any(|o| doc_text.contains(o)));
                }
            }
        }
    }

    #[test]
    fn qa_categories_all_present() {
        let w = small();
        for cat in QaCategory::ALL {
            assert!(w.qa.iter().any(|i| i.category == cat), "missing category {:?}", cat);
        }
    }

    #[test]
    fn aggregate_gold_matches_sql() {
        let w = small();
        for item in w.qa.iter().filter(|i| i.category == QaCategory::Aggregate) {
            let GoldAnswer::Numeric { value, .. } = &item.gold else { panic!() };
            // The entity is a product; SQL total must match the gold value.
            let product = &item.entities[0];
            let out =
                w.db.run_sql(&format!(
                    "SELECT SUM(amount) AS t FROM sales WHERE product LIKE '{product}'"
                ))
                .unwrap();
            let total = out.cell(0, 0).as_f64().unwrap();
            assert!(answer_matches(&item.gold, &format!("{total}")), "{total} vs {value}");
        }
    }

    #[test]
    fn orders_flatten_to_queryable_table() {
        let w = small();
        let t = w.semi.to_table("orders").unwrap();
        assert_eq!(t.num_rows(), 6 * 3);
        assert!(t.schema().index_of("amount").is_some());
    }

    #[test]
    fn docstore_roundtrip() {
        let w = small();
        let d = w.docstore();
        assert_eq!(d.num_documents(), w.documents.len());
        assert!(d.num_chunks() >= d.num_documents());
    }

    #[test]
    fn lexicon_knows_products_and_makers() {
        let w = small();
        assert!(w.lexicon.get("aero widget").is_some());
        assert!(w.lexicon.get(&w.gold_maker[0].to_lowercase()).is_some());
    }

    #[test]
    #[should_panic(expected = "at least 4 products")]
    fn too_small_config_panics() {
        EcommerceWorkload::generate(EcommerceConfig { products: 2, ..EcommerceConfig::default() });
    }
}
