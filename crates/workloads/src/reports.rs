//! Free-text sales-report corpus with gold extraction labels (experiment
//! E4: Relational Table Generation quality).
//!
//! Every report sentence is rendered from a [`GoldFact`] through one of
//! several templates, interleaved with distractor sentences, so extraction
//! output can be scored cell-by-cell against ground truth.

use detkit::Rng;
use unisem_slm::ner::EntityKind;

use crate::names;

/// One ground-truth fact a report sentence asserts.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldFact {
    /// Subject entity (canonical lowercase).
    pub subject: String,
    /// Metric word ("sales" or "revenue").
    pub metric: String,
    /// Period label ("Q2 2024").
    pub period: String,
    /// Signed percent change, when the sentence asserts one.
    pub change_pct: Option<f64>,
    /// Dollar amount, when the sentence asserts one.
    pub amount: Option<f64>,
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct ReportCorpus {
    /// Report documents.
    pub texts: Vec<String>,
    /// Gold facts, in sentence order across all texts.
    pub facts: Vec<GoldFact>,
    /// Lexicon entries the SLM needs to recognize the subjects.
    pub lexicon_entries: Vec<(String, EntityKind)>,
}

/// Distractor sentences carrying no extractable facts.
const FILLER: &[&str] = &[
    "The management team met to discuss strategy.",
    "Market conditions remained broadly stable.",
    "Analysts attended the quarterly briefing.",
    "Further details will follow in the appendix.",
    "The committee reviewed operational procedures.",
];

impl ReportCorpus {
    /// Generates `n_facts` fact sentences grouped into reports of ~5
    /// sentences, with one distractor per report.
    pub fn generate(n_facts: usize, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let mut facts = Vec::with_capacity(n_facts);
        let mut sentences: Vec<String> = Vec::new();
        let mut lexicon_entries = Vec::new();
        let n_products = (n_facts / 3).clamp(3, 24);
        for p in 0..n_products {
            lexicon_entries.push((names::product(p), EntityKind::Product));
        }

        for i in 0..n_facts {
            let product = names::product(i % n_products);
            let metric = if rng.gen_bool(0.7) { "sales" } else { "revenue" };
            let period = names::quarter(rng.gen_range(0..8usize));
            let template = rng.gen_range(0..6u8);
            let (sentence, fact) = match template {
                0 => {
                    let pct = (rng.gen_range(10..400) as f64) / 10.0;
                    let up = rng.gen_bool(0.6);
                    let verb = if up { "increased" } else { "decreased" };
                    (
                        format!("{product} {metric} {verb} {pct}% in {period}."),
                        GoldFact {
                            subject: product.to_lowercase(),
                            metric: metric.to_string(),
                            period: period.clone(),
                            change_pct: Some(if up { pct } else { -pct }),
                            amount: None,
                        },
                    )
                }
                1 => {
                    let pct = (rng.gen_range(10..300) as f64) / 10.0;
                    let amount = (rng.gen_range(50..900) * 100) as f64;
                    let up = rng.gen_bool(0.6);
                    let verb = if up { "rose" } else { "fell" };
                    (
                        format!("In {period}, {product} {metric} {verb} {pct}% to ${amount}.",),
                        GoldFact {
                            subject: product.to_lowercase(),
                            metric: metric.to_string(),
                            period: period.clone(),
                            change_pct: Some(if up { pct } else { -pct }),
                            amount: Some(amount),
                        },
                    )
                }
                2 => {
                    let amount = (rng.gen_range(50..900) * 100) as f64;
                    (
                        format!("{product} {metric} reached ${amount} in {period}."),
                        GoldFact {
                            subject: product.to_lowercase(),
                            metric: metric.to_string(),
                            period: period.clone(),
                            change_pct: None,
                            amount: Some(amount),
                        },
                    )
                }
                3 => {
                    let amount = (rng.gen_range(50..900) * 100) as f64;
                    (
                        format!("{product} {metric} totaled ${amount} in {period}."),
                        GoldFact {
                            subject: product.to_lowercase(),
                            metric: metric.to_string(),
                            period: period.clone(),
                            change_pct: None,
                            amount: Some(amount),
                        },
                    )
                }
                // Extraction-resistant phrasings: passive voice and
                // nominalized declines hide the polarity from a verb-based
                // extractor — these sentences are where precision/recall
                // realistically drop below 1.
                4 => {
                    let pct = (rng.gen_range(10..300) as f64) / 10.0;
                    (
                        format!(
                            "A {pct}% decline in {metric} was recorded for {product} in {period}.",
                        ),
                        GoldFact {
                            subject: product.to_lowercase(),
                            metric: metric.to_string(),
                            period: period.clone(),
                            change_pct: Some(-pct),
                            amount: None,
                        },
                    )
                }
                _ => {
                    let pct = (rng.gen_range(10..300) as f64) / 10.0;
                    (
                        format!(
                            "Management attributed the {pct}% growth of {product} {metric} \
                             to seasonal demand during {period}.",
                        ),
                        GoldFact {
                            subject: product.to_lowercase(),
                            metric: metric.to_string(),
                            period: period.clone(),
                            change_pct: Some(pct),
                            amount: None,
                        },
                    )
                }
            };
            facts.push(fact);
            sentences.push(sentence);
            // One distractor every ~4 fact sentences.
            if i % 4 == 3 {
                sentences.push(FILLER[rng.gen_range(0..FILLER.len())].to_string());
            }
        }

        // Group into report documents of 5 sentences.
        let texts: Vec<String> = sentences.chunks(5).map(|chunk| chunk.join(" ")).collect();
        Self { texts, facts, lexicon_entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = ReportCorpus::generate(20, 7);
        let b = ReportCorpus::generate(20, 7);
        assert_eq!(a.texts, b.texts);
        assert_eq!(a.facts, b.facts);
    }

    #[test]
    fn fact_count_exact() {
        let c = ReportCorpus::generate(30, 1);
        assert_eq!(c.facts.len(), 30);
        assert!(!c.texts.is_empty());
    }

    #[test]
    fn sentences_contain_fact_values() {
        let c = ReportCorpus::generate(12, 3);
        let all_text = c.texts.join(" ").to_lowercase();
        for f in &c.facts {
            assert!(all_text.contains(&f.subject));
            if let Some(pct) = f.change_pct {
                assert!(all_text.contains(&format!("{}%", pct.abs())));
            }
        }
    }

    #[test]
    fn lexicon_covers_subjects() {
        let c = ReportCorpus::generate(24, 9);
        let lex: Vec<String> = c.lexicon_entries.iter().map(|(n, _)| n.to_lowercase()).collect();
        for f in &c.facts {
            assert!(lex.contains(&f.subject), "missing {}", f.subject);
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(ReportCorpus::generate(20, 1).texts, ReportCorpus::generate(20, 2).texts);
    }
}
