//! String and set similarity measures.
//!
//! Used for entity linking (matching query mentions to graph entity nodes),
//! answer clustering in semantic entropy, and fuzzy schema alignment.

use std::collections::BTreeMap;

/// Levenshtein edit distance between two strings (unit costs).
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein similarity normalized to `[0, 1]` (1 = identical).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: matched characters out of order.
    let mut b_matches: Vec<usize> = matches_a.iter().map(|&(_, j)| j).collect();
    let sorted = {
        let mut s = b_matches.clone();
        s.sort_unstable();
        s
    };
    let t = b_matches.iter().zip(sorted.iter()).filter(|(x, y)| x != y).count() as f64 / 2.0;
    b_matches.clear();
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity in `[0, 1]`, boosting shared prefixes.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity of two token sets in `[0, 1]`.
pub fn jaccard<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&T> = a.iter().collect();
    let sb: HashSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Cosine similarity between two term-frequency maps.
///
/// Takes `BTreeMap`s so the float dot-product accumulates in a
/// deterministic key order (hash-map iteration order would make the sum
/// vary across processes).
pub fn cosine_terms(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small.iter().filter_map(|(k, v)| large.get(k).map(|w| v * w)).sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Cosine similarity between two dense vectors of equal length.
///
/// Returns 0.0 when either vector is all-zero. Panics if lengths differ.
pub fn cosine_dense(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_dense: dimension mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_symmetric() {
        assert_eq!(levenshtein("abcdef", "azced"), levenshtein("azced", "abcdef"));
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let v = normalized_levenshtein("drug-a", "druga");
        assert!(v > 0.8);
    }

    #[test]
    fn jaro_winkler_basics() {
        assert!((jaro_winkler("martha", "marhta") - 0.9611).abs() < 0.001);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("abc", ""), 0.0);
        assert!(jaro_winkler("prefix", "prefixed") > jaro_winkler("prefix", "xiferp"));
    }

    #[test]
    fn jaccard_basics() {
        let a = vec!["a", "b", "c"];
        let b = vec!["b", "c", "d"];
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-9);
        let empty: Vec<&str> = vec![];
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn jaccard_duplicates_are_set_semantics() {
        let a = vec!["a", "a", "b"];
        let b = vec!["a", "b", "b"];
        assert_eq!(jaccard(&a, &b), 1.0);
    }

    #[test]
    fn cosine_terms_basics() {
        let mut a = BTreeMap::new();
        a.insert("x".to_string(), 1.0);
        a.insert("y".to_string(), 1.0);
        let mut b = BTreeMap::new();
        b.insert("x".to_string(), 1.0);
        b.insert("y".to_string(), 1.0);
        assert!((cosine_terms(&a, &b) - 1.0).abs() < 1e-9);
        let mut c = BTreeMap::new();
        c.insert("z".to_string(), 2.0);
        assert_eq!(cosine_terms(&a, &c), 0.0);
    }

    #[test]
    fn cosine_dense_basics() {
        assert!((cosine_dense(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!((cosine_dense(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-9);
        assert_eq!(cosine_dense(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_dense_mismatch_panics() {
        cosine_dense(&[1.0], &[1.0, 2.0]);
    }
}
