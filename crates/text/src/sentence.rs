//! Sentence boundary detection.
//!
//! A rule-based splitter good enough for the synthetic corpora this system
//! indexes: it handles the common abbreviation traps (`Dr.`, `e.g.`,
//! `U.S.`), decimal numbers, and quoted sentence ends, without pretending to
//! be a full discourse segmenter.

/// Abbreviations after which a period does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "sr", "jr", "st", "vs", "etc", "e.g", "i.e", "fig", "no",
    "vol", "inc", "ltd", "co", "corp", "dept", "approx", "est", "al",
];

/// A sentence with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// Sentence text, trimmed of surrounding whitespace.
    pub text: String,
    /// Byte offset of the sentence start in the source.
    pub start: usize,
    /// Byte offset one past the sentence end.
    pub end: usize,
}

/// Splits `text` into sentences.
///
/// Boundaries are `.`, `!`, `?` (possibly followed by closing quotes or
/// parentheses) when followed by whitespace and an uppercase letter, digit, or
/// end of text — except after known abbreviations or inside decimal numbers.
/// Newlines that look like paragraph breaks (two consecutive) always split.
///
/// ```
/// use unisem_text::split_sentences;
/// let s = split_sentences("Dr. Smith prescribed Drug A. The patient improved.");
/// assert_eq!(s.len(), 2);
/// assert!(s[0].starts_with("Dr. Smith"));
/// ```
pub fn split_sentences(text: &str) -> Vec<String> {
    split_sentences_spans(text).into_iter().map(|s| s.text).collect()
}

/// Like [`split_sentences`] but returns byte spans too.
pub fn split_sentences_spans(text: &str) -> Vec<Sentence> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let mut sentences = Vec::new();
    let mut sent_start = 0usize;

    let mut i = 0;
    while i < chars.len() {
        let (off, c) = chars[i];
        let mut boundary_end: Option<usize> = None;

        if c == '\n' {
            // Paragraph break: two or more newlines (possibly with spaces).
            let mut j = i + 1;
            let mut newlines = 1;
            while j < chars.len() && chars[j].1.is_whitespace() {
                if chars[j].1 == '\n' {
                    newlines += 1;
                }
                j += 1;
            }
            if newlines >= 2 {
                boundary_end = Some(off);
            }
        } else if c == '.' || c == '!' || c == '?' {
            // Skip closing quotes/brackets after the terminator.
            let mut j = i + 1;
            while j < chars.len() && matches!(chars[j].1, '"' | '\'' | ')' | ']' | '”' | '’') {
                j += 1;
            }
            let terminator_end = if j < chars.len() { chars[j].0 } else { text.len() };
            let at_eot = j >= chars.len();
            let followed_by_space = !at_eot && chars[j].1.is_whitespace();
            if at_eot || followed_by_space {
                let rest = if j < chars.len() { &text[chars[j].0..] } else { "" };
                let is_abbrev = c == '.' && ends_with_abbreviation(&text[sent_start..off], rest);
                let is_decimal = c == '.'
                    && i + 1 < chars.len()
                    && chars[i + 1].1.is_ascii_digit()
                    && i > 0
                    && chars[i - 1].1.is_ascii_digit();
                // Require the next non-space char to start a new sentence
                // (uppercase, digit, quote) to avoid splitting "e.g. the".
                let next_ok = at_eot || {
                    let mut k = j;
                    while k < chars.len() && chars[k].1.is_whitespace() {
                        k += 1;
                    }
                    k >= chars.len()
                        || chars[k].1.is_uppercase()
                        || chars[k].1.is_ascii_digit()
                        || matches!(chars[k].1, '"' | '\'' | '“' | '‘')
                };
                if !is_abbrev && !is_decimal && next_ok {
                    boundary_end = Some(terminator_end);
                }
            }
        }

        if let Some(end) = boundary_end {
            push_sentence(text, sent_start, end, &mut sentences);
            // Advance past whitespace to next sentence start.
            let mut j = i + 1;
            while j < chars.len() && chars[j].1.is_whitespace() {
                j += 1;
            }
            sent_start = if j < chars.len() { chars[j].0 } else { text.len() };
            i = j;
        } else {
            i += 1;
        }
    }
    push_sentence(text, sent_start, text.len(), &mut sentences);
    sentences
}

fn push_sentence(text: &str, start: usize, end: usize, out: &mut Vec<Sentence>) {
    if start >= end {
        return;
    }
    let raw = &text[start..end];
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return;
    }
    let lead = raw.len() - raw.trim_start().len();
    let trail = raw.len() - raw.trim_end().len();
    out.push(Sentence { text: trimmed.to_string(), start: start + lead, end: end - trail });
}

/// Words that very commonly begin a sentence; used to disambiguate a
/// sentence-final single initial ("Drug A. The patient…") from a name
/// initial ("J. Smith").
const SENTENCE_STARTERS: &[&str] = &[
    "The",
    "This",
    "That",
    "These",
    "Those",
    "It",
    "He",
    "She",
    "They",
    "We",
    "You",
    "In",
    "On",
    "At",
    "By",
    "For",
    "After",
    "Before",
    "However",
    "Meanwhile",
    "Then",
    "There",
    "A",
    "An",
];

/// Whether the text ends with a known abbreviation (the token right before a
/// period), or a single uppercase initial like "J" that is plausibly part of
/// a name given what follows.
fn ends_with_abbreviation(before: &str, after: &str) -> bool {
    let last = before
        .rsplit(|c: char| c.is_whitespace())
        .next()
        .unwrap_or("")
        .trim_matches(|c: char| !c.is_alphanumeric() && c != '.');
    if last.is_empty() {
        return false;
    }
    let lower = last.to_lowercase();
    // Strip trailing periods of multi-dot abbreviations (e.g -> "e.g").
    let lower = lower.trim_end_matches('.');
    if ABBREVIATIONS.contains(&lower) {
        return true;
    }
    // Single uppercase initial: "J." in "J. Smith" — but if the next word is
    // a common sentence starter, treat the period as a real boundary
    // ("…Drug A. The patient improved.").
    let is_initial =
        last.chars().count() == 1 && last.chars().next().is_some_and(|c| c.is_uppercase());
    if is_initial {
        let next_word: String =
            after.trim_start().chars().take_while(|c| c.is_alphanumeric()).collect();
        return !SENTENCE_STARTERS.contains(&next_word.as_str());
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_basic() {
        let s = split_sentences("First sentence. Second one! Third?");
        assert_eq!(s, vec!["First sentence.", "Second one!", "Third?"]);
    }

    #[test]
    fn keeps_abbreviations() {
        let s = split_sentences("Dr. Smith arrived. He was late.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], "Dr. Smith arrived.");
    }

    #[test]
    fn keeps_decimals() {
        let s = split_sentences("Sales rose 12.5 percent. Profits fell.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("12.5"));
    }

    #[test]
    fn eg_not_split_before_lowercase() {
        let s = split_sentences("Use devices, e.g. phones, for tests.");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn paragraph_break_splits() {
        let s = split_sentences("alpha beta\n\ngamma delta");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], "alpha beta");
        assert_eq!(s[1], "gamma delta");
    }

    #[test]
    fn no_terminator_still_returns_tail() {
        let s = split_sentences("an unterminated fragment");
        assert_eq!(s, vec!["an unterminated fragment"]);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("  \n ").is_empty());
    }

    #[test]
    fn quoted_terminator() {
        let s = split_sentences("She said \"stop.\" Then left.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn spans_are_valid() {
        let text = "One. Two. Three ends here";
        for s in split_sentences_spans(text) {
            assert_eq!(&text[s.start..s.end], s.text);
        }
    }

    #[test]
    fn initials_not_split() {
        let s = split_sentences("Patient J. Doe recovered fully. Discharged on Monday.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("J. Doe"));
    }

    #[test]
    fn lowercase_continuation_not_split() {
        // "no. 5" — 'no' is an abbreviation.
        let s = split_sentences("See item no. 5 in the list.");
        assert_eq!(s.len(), 1);
    }
}
