//! Character and word n-gram extraction.
//!
//! Character n-grams feed the feature-hashed embeddings in `unisem-slm`;
//! word n-grams support phrase matching in entity linking.

/// Yields character n-grams of `word` with boundary markers (`^word$`).
///
/// Boundary markers make prefix/suffix information explicit, which improves
/// hashed-embedding quality for short tokens.
///
/// ```
/// use unisem_text::ngram::char_ngrams;
/// let grams = char_ngrams("cat", 3);
/// assert_eq!(grams, vec!["^ca", "cat", "at$"]);
/// ```
pub fn char_ngrams(word: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let padded: Vec<char> =
        std::iter::once('^').chain(word.chars()).chain(std::iter::once('$')).collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// Yields all character n-grams for sizes `min..=max`.
pub fn char_ngrams_range(word: &str, min: usize, max: usize) -> Vec<String> {
    (min..=max).flat_map(|n| char_ngrams(word, n)).collect()
}

/// Yields word n-grams (as joined strings) over a token slice.
///
/// ```
/// use unisem_text::ngram::word_ngrams;
/// let toks: Vec<String> = ["new", "york", "city"].iter().map(|s| s.to_string()).collect();
/// assert_eq!(word_ngrams(&toks, 2), vec!["new york", "york city"]);
/// ```
pub fn word_ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_boundaries() {
        assert_eq!(char_ngrams("ab", 3), vec!["^ab", "ab$"]);
    }

    #[test]
    fn short_word_single_gram() {
        assert_eq!(char_ngrams("a", 4), vec!["^a$"]);
    }

    #[test]
    fn zero_n_is_empty() {
        assert!(char_ngrams("abc", 0).is_empty());
        assert!(word_ngrams(&[], 0).is_empty());
    }

    #[test]
    fn range_concatenates() {
        let grams = char_ngrams_range("cat", 2, 3);
        assert!(grams.contains(&"^c".to_string()));
        assert!(grams.contains(&"cat".to_string()));
    }

    #[test]
    fn word_bigrams() {
        let toks: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(word_ngrams(&toks, 2), vec!["a b", "b c"]);
        assert_eq!(word_ngrams(&toks, 3), vec!["a b c"]);
        assert!(word_ngrams(&toks, 4).is_empty());
    }

    #[test]
    fn unicode_safe() {
        let grams = char_ngrams("naïve", 3);
        assert!(grams.iter().any(|g| g.contains('ï')));
    }
}
