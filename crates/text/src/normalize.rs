//! Token normalization: case folding, stopwords, and a Porter-style stemmer.
//!
//! The stemmer implements the high-value subset of the Porter algorithm
//! (steps 1a/1b/1c plus the common derivational suffixes) — enough to conflate
//! `purchases`/`purchased`/`purchasing` → `purchas`, which is what retrieval
//! needs, without the long tail of rare rules.

/// English stopwords used across indexing and query analysis.
///
/// The list is intentionally small: over-aggressive stopword removal hurts
/// entity-bearing queries ("IT department", "The Who").
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "been", "but", "by", "for", "from", "had", "has",
    "have", "he", "her", "his", "i", "in", "into", "is", "it", "its", "of", "on", "or", "our",
    "she", "such", "that", "the", "their", "them", "then", "there", "these", "they", "this", "to",
    "was", "we", "were", "which", "will", "with", "you", "your", "do", "does", "did", "what",
    "when", "where", "who", "how", "why", "than", "so", "if", "not", "no", "any", "all", "each",
    "per", "about", "over", "under", "between", "during", "after", "before",
];

/// Returns true when `word` (lower-cased) is an English stopword.
pub fn is_stopword(word: &str) -> bool {
    let lower = word.to_lowercase();
    STOPWORDS.binary_search(&lower.as_str()).is_ok() || STOPWORDS.contains(&lower.as_str())
}

/// A reusable stopword filter.
///
/// Holds the default list plus optional extra (domain) stopwords.
#[derive(Debug, Clone, Default)]
pub struct StopwordFilter {
    extra: Vec<String>,
}

impl StopwordFilter {
    /// Creates a filter with only the default stopword list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds domain-specific stopwords (lower-cased internally).
    pub fn with_extra<I: IntoIterator<Item = S>, S: Into<String>>(mut self, extra: I) -> Self {
        self.extra.extend(extra.into_iter().map(|s| s.into().to_lowercase()));
        self
    }

    /// Returns true when `word` should be filtered out.
    pub fn is_stop(&self, word: &str) -> bool {
        let lower = word.to_lowercase();
        is_stopword(&lower) || self.extra.iter().any(|e| e == &lower)
    }

    /// Removes stopwords from a token stream, preserving order.
    pub fn filter<'a>(&'a self, tokens: &'a [String]) -> impl Iterator<Item = &'a String> + 'a {
        tokens.iter().filter(move |t| !self.is_stop(t))
    }
}

/// Lowercases and stems a token: the canonical index-term form.
pub fn normalize_token(token: &str) -> String {
    stem(&token.to_lowercase())
}

/// Porter-style stemmer (steps 1a, 1b, 1c and common step-2/3/4 suffixes).
///
/// Operates on lower-case ASCII words; non-ASCII input is returned unchanged.
///
/// ```
/// use unisem_text::stem;
/// assert_eq!(stem("purchases"), stem("purchased"));
/// assert_eq!(stem("running"), "run");
/// ```
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.is_ascii() {
        return word.to_string();
    }
    let mut w = word.to_string();

    // Step 1a: plurals.
    if let Some(base) = w.strip_suffix("sses") {
        w = format!("{base}ss");
    } else if let Some(base) = w.strip_suffix("ies") {
        w = format!("{base}i");
    } else if w.ends_with("ss") {
        // keep
    } else if let Some(base) = w.strip_suffix('s') {
        if base.len() > 2 {
            w = base.to_string();
        }
    }

    // Step 1b: -eed, -ed, -ing.
    if let Some(base) = w.strip_suffix("eed") {
        if measure(base) > 0 {
            w = format!("{base}ee");
        }
    } else if let Some(base) = w.strip_suffix("ed") {
        if contains_vowel(base) {
            w = post_1b(base);
        }
    } else if let Some(base) = w.strip_suffix("ing") {
        if contains_vowel(base) {
            w = post_1b(base);
        }
    }

    // Step 1c: terminal y -> i when stem has a vowel.
    if w.ends_with('y') {
        let base = &w[..w.len() - 1];
        if contains_vowel(base) && base.len() > 1 {
            w = format!("{base}i");
        }
    }

    // A selection of step 2–4 derivational suffixes (longest first).
    const SUFFIX_MAP: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("ization", "ize"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("iveness", "ive"),
        ("tional", "tion"),
        ("biliti", "ble"),
        ("entli", "ent"),
        ("ousli", "ous"),
        ("alism", "al"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("ement", ""),
        ("ment", ""),
        ("ance", ""),
        ("ence", ""),
        ("able", ""),
        ("ible", ""),
        ("ant", ""),
        ("ent", ""),
        ("ion", ""),
        ("ful", ""),
        ("er", ""),
        ("ness", ""),
        ("aliti", "al"),
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
    ];
    for (suf, rep) in SUFFIX_MAP {
        if let Some(base) = w.strip_suffix(suf) {
            // Porter: step-2/3 rewrites need m > 0; step-4 deletions m > 1.
            let min_measure = if rep.is_empty() { 1 } else { 0 };
            if measure(base) > min_measure {
                w = format!("{base}{rep}");
                break;
            }
        }
    }

    // Step 5a: drop a final 'e' when the stem is long enough.
    if let Some(base) = w.strip_suffix('e') {
        let m = measure(base);
        if m > 1 || (m == 1 && !ends_cvc(base)) {
            w = base.to_string();
        }
    }
    w
}

/// After removing -ed/-ing: restore 'e' (hop->hope cases), undouble
/// consonants (hopp->hop), per Porter 1b cleanup.
fn post_1b(base: &str) -> String {
    if base.ends_with("at") || base.ends_with("bl") || base.ends_with("iz") {
        return format!("{base}e");
    }
    let bytes = base.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] && is_consonant_byte(bytes, n - 1) {
        let last = bytes[n - 1] as char;
        if !matches!(last, 'l' | 's' | 'z') {
            return base[..n - 1].to_string();
        }
    }
    if measure(base) == 1 && ends_cvc(base) {
        return format!("{base}e");
    }
    base.to_string()
}

fn is_vowel_byte(bytes: &[u8], i: usize) -> bool {
    match bytes[i] as char {
        'a' | 'e' | 'i' | 'o' | 'u' => true,
        'y' => i > 0 && !is_vowel_byte(bytes, i - 1),
        _ => false,
    }
}

fn is_consonant_byte(bytes: &[u8], i: usize) -> bool {
    !is_vowel_byte(bytes, i)
}

fn contains_vowel(word: &str) -> bool {
    let bytes = word.as_bytes();
    (0..bytes.len()).any(|i| is_vowel_byte(bytes, i))
}

/// Porter "measure": the number of VC sequences in the word.
fn measure(word: &str) -> usize {
    let bytes = word.as_bytes();
    let mut m = 0;
    let mut prev_vowel = false;
    for i in 0..bytes.len() {
        let v = is_vowel_byte(bytes, i);
        if prev_vowel && !v {
            m += 1;
        }
        prev_vowel = v;
    }
    m
}

/// True for consonant-vowel-consonant ending where the final consonant is
/// not w, x, or y.
fn ends_cvc(word: &str) -> bool {
    let bytes = word.as_bytes();
    let n = bytes.len();
    if n < 3 {
        return false;
    }
    is_consonant_byte(bytes, n - 3)
        && is_vowel_byte(bytes, n - 2)
        && is_consonant_byte(bytes, n - 1)
        && !matches!(bytes[n - 1] as char, 'w' | 'x' | 'y')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stem_plurals() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("cats"), "cat");
        assert_eq!(stem("pass"), "pass");
    }

    #[test]
    fn stem_ed_ing() {
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("filing"), "file");
    }

    #[test]
    fn conflation_classes() {
        assert_eq!(stem("purchases"), stem("purchased"));
        assert_eq!(stem("purchasing"), stem("purchase"));
        assert_eq!(stem("connected"), stem("connecting"));
        assert_eq!(stem("relational"), stem("relate"));
    }

    #[test]
    fn y_to_i() {
        assert_eq!(stem("happy"), "happi");
        assert_eq!(stem("sky"), "sky"); // no vowel before y
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("go"), "go");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(stem("naïve"), "naïve");
    }

    #[test]
    fn stopwords_basic() {
        assert!(is_stopword("the"));
        assert!(is_stopword("The"));
        assert!(!is_stopword("sales"));
        assert!(!is_stopword("drug"));
    }

    #[test]
    fn stopword_filter_extra() {
        let f = StopwordFilter::new().with_extra(["product"]);
        assert!(f.is_stop("the"));
        assert!(f.is_stop("Product"));
        assert!(!f.is_stop("sales"));
    }

    #[test]
    fn filter_preserves_order() {
        let f = StopwordFilter::new();
        let toks: Vec<String> =
            ["the", "total", "of", "sales"].iter().map(|s| s.to_string()).collect();
        let kept: Vec<&String> = f.filter(&toks).collect();
        assert_eq!(kept, vec!["total", "sales"]);
    }

    #[test]
    fn normalize_combines() {
        assert_eq!(normalize_token("Purchases"), normalize_token("purchased"));
    }

    #[test]
    fn measure_examples() {
        assert_eq!(measure("tr"), 0);
        assert_eq!(measure("tree"), 0);
        assert_eq!(measure("trouble"), 1);
        assert_eq!(measure("troubles"), 2);
    }
}
