//! Span-preserving tokenization.
//!
//! The tokenizer splits raw text into [`Token`]s that remember their byte
//! offsets in the source string, so downstream consumers (NER tagging, chunk
//! construction, provenance tracking) can always map results back to the
//! original document.

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word (may contain internal apostrophes or hyphens).
    Word,
    /// Integer or decimal number, optionally with sign, commas, `%` or
    /// currency handled as separate tokens.
    Number,
    /// A single punctuation or symbol character.
    Punct,
}

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text as it appears in the source.
    pub text: String,
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token in the source.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Token {
    /// Returns the token text lower-cased.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// True if the token starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// True if every alphabetic character in the token is uppercase and the
    /// token contains at least two characters (e.g. acronyms like `EHR`).
    pub fn is_acronym(&self) -> bool {
        self.text.chars().count() >= 2
            && self.text.chars().all(|c| !c.is_alphabetic() || c.is_uppercase())
            && self.text.chars().any(|c| c.is_alphabetic())
    }
}

/// Tokenizes `text` into words, numbers, and punctuation with byte spans.
///
/// Rules:
/// - Runs of alphabetic characters form [`TokenKind::Word`] tokens; internal
///   `'` and `-` are kept when surrounded by letters (`don't`, `cross-modal`).
/// - Runs of digits form [`TokenKind::Number`] tokens; internal `.` and `,`
///   are kept when surrounded by digits (`1,234.56`).
/// - Everything else that is not whitespace becomes a single-character
///   [`TokenKind::Punct`] token.
///
/// ```
/// use unisem_text::tokenize;
/// let toks = tokenize("Q2 sales rose 20%.");
/// let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(texts, vec!["Q2", "sales", "rose", "20", "%", "."]);
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.char_indices().collect::<Vec<_>>();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let (off, c) = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() {
            // Word: letters plus digits directly attached (Q2, B2B) and
            // internal apostrophes/hyphens surrounded by alphanumerics.
            let start = off;
            let mut j = i + 1;
            while j < bytes.len() {
                let (_, cj) = bytes[j];
                if cj.is_alphanumeric() {
                    j += 1;
                } else if (cj == '\'' || cj == '-')
                    && j + 1 < bytes.len()
                    && bytes[j + 1].1.is_alphanumeric()
                {
                    j += 2;
                } else {
                    break;
                }
            }
            let end = if j < bytes.len() { bytes[j].0 } else { text.len() };
            tokens.push(Token {
                text: text[start..end].to_string(),
                kind: TokenKind::Word,
                start,
                end,
            });
            i = j;
        } else if c.is_ascii_digit()
            || ((c == '-' || c == '+')
                && i + 1 < bytes.len()
                && bytes[i + 1].1.is_ascii_digit()
                && prev_is_boundary(&tokens, off))
        {
            let start = off;
            let mut j = if c == '-' || c == '+' { i + 1 } else { i };
            while j < bytes.len() {
                let (_, cj) = bytes[j];
                if cj.is_ascii_digit() {
                    j += 1;
                } else if (cj == '.' || cj == ',')
                    && j + 1 < bytes.len()
                    && bytes[j + 1].1.is_ascii_digit()
                {
                    j += 2;
                } else {
                    break;
                }
            }
            let end = if j < bytes.len() { bytes[j].0 } else { text.len() };
            tokens.push(Token {
                text: text[start..end].to_string(),
                kind: TokenKind::Number,
                start,
                end,
            });
            i = j;
        } else {
            let end = off + c.len_utf8();
            tokens.push(Token {
                text: text[off..end].to_string(),
                kind: TokenKind::Punct,
                start: off,
                end,
            });
            i += 1;
        }
    }
    tokens
}

/// True when a leading `-`/`+` at byte `off` should start a signed number:
/// only when the previous emitted token does not end immediately before it
/// (i.e. there is whitespace or start-of-text before the sign).
fn prev_is_boundary(tokens: &[Token], off: usize) -> bool {
    tokens.last().map_or(true, |t| t.end < off)
}

/// Convenience: lowercase word and number tokens only (punctuation dropped).
///
/// This is the shape most indexing code wants.
pub fn tokenize_words(text: &str) -> Vec<String> {
    tokenize(text).into_iter().filter(|t| t.kind != TokenKind::Punct).map(|t| t.lower()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sentence() {
        let toks = tokenize("The cat sat.");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0].text, "The");
        assert_eq!(toks[0].kind, TokenKind::Word);
        assert_eq!(toks[3].kind, TokenKind::Punct);
    }

    #[test]
    fn spans_roundtrip() {
        let text = "Drug-A improved outcomes by 12.5% in Q2.";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn numbers_with_separators() {
        let toks = tokenize("revenue was 1,234.56 dollars");
        let num = toks.iter().find(|t| t.kind == TokenKind::Number).unwrap();
        assert_eq!(num.text, "1,234.56");
    }

    #[test]
    fn signed_number_after_space() {
        let toks = tokenize("change: -15 points");
        let num = toks.iter().find(|t| t.kind == TokenKind::Number).unwrap();
        assert_eq!(num.text, "-15");
    }

    #[test]
    fn hyphen_between_words_kept() {
        let toks = tokenize("cross-modal context");
        assert_eq!(toks[0].text, "cross-modal");
    }

    #[test]
    fn trailing_hyphen_not_kept() {
        let toks = tokenize("cross- modal");
        assert_eq!(toks[0].text, "cross");
        assert_eq!(toks[1].text, "-");
    }

    #[test]
    fn alphanumeric_words() {
        let toks = tokenize("Q2 B2B 4K");
        assert_eq!(toks[0].text, "Q2");
        assert_eq!(toks[1].text, "B2B");
        // "4K" starts with a digit: number 4, then word K.
        assert_eq!(toks[2].text, "4");
        assert_eq!(toks[3].text, "K");
    }

    #[test]
    fn percent_is_separate_punct() {
        let toks = tokenize("20%");
        assert_eq!(toks[0].text, "20");
        assert_eq!(toks[1].text, "%");
        assert_eq!(toks[1].kind, TokenKind::Punct);
    }

    #[test]
    fn apostrophes() {
        let toks = tokenize("patient's symptoms don't improve");
        assert_eq!(toks[0].text, "patient's");
        assert_eq!(toks[2].text, "don't");
    }

    #[test]
    fn unicode_text() {
        let text = "naïve café 概念 42";
        let toks = tokenize(text);
        for t in &toks {
            assert_eq!(&text[t.start..t.end], t.text);
        }
        assert!(toks.iter().any(|t| t.text == "naïve"));
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn tokenize_words_drops_punct_and_lowercases() {
        let ws = tokenize_words("The Cat, the HAT!");
        assert_eq!(ws, vec!["the", "cat", "the", "hat"]);
    }

    #[test]
    fn acronym_detection() {
        let toks = tokenize("the EHR system");
        assert!(toks[1].is_acronym());
        assert!(!toks[0].is_acronym());
        assert!(!toks[2].is_acronym());
    }

    #[test]
    fn capitalized_detection() {
        let toks = tokenize("Alice met bob");
        assert!(toks[0].is_capitalized());
        assert!(!toks[2].is_capitalized());
    }
}
