//! # unisem-text
//!
//! Text analytics substrate for the `unisem` system.
//!
//! This crate provides the deterministic, dependency-free natural-language
//! plumbing every other crate builds on:
//!
//! - [`tokenize`]: span-preserving word/number/punctuation tokenization,
//! - [`sentence`]: sentence boundary detection,
//! - [`chunk`]: sentence-aligned sliding-window chunking for indexing,
//! - [`normalize`]: case folding, a Porter-style stemmer, and a stopword list,
//! - [`ngram`]: character and word n-gram extraction,
//! - [`similarity`]: Levenshtein / Jaro-Winkler / Jaccard / cosine measures,
//! - [`tfidf`]: corpus statistics and TF-IDF weighting,
//! - [`bm25`]: an Okapi BM25 scorer over tokenized documents.
//!
//! Everything here is pure and deterministic: no randomness, no clocks, no
//! global state, which is what makes the experiment harness reproducible.

pub mod bm25;
pub mod chunk;
pub mod ngram;
pub mod normalize;
pub mod sentence;
pub mod similarity;
pub mod tfidf;
pub mod tokenize;

pub use bm25::Bm25Index;
pub use chunk::{chunk_sentences, Chunk, ChunkConfig};
pub use normalize::{is_stopword, normalize_token, stem, StopwordFilter};
pub use sentence::split_sentences;
pub use similarity::{cosine_terms, jaccard, jaro_winkler, levenshtein, normalized_levenshtein};
pub use tfidf::{CorpusStats, TfIdfVectorizer};
pub use tokenize::{tokenize, tokenize_words, Token, TokenKind};
