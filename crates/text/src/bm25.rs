//! Okapi BM25 scoring over a tokenized corpus.
//!
//! This powers the lexical-retrieval baseline and the lexical component of
//! the hybrid retriever. Documents are identified by dense `usize` ids
//! assigned at insertion order.

use std::collections::BTreeMap;

use crate::normalize::normalize_token;
use crate::tokenize::tokenize_words;

/// BM25 hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical 1.2–2.0).
    pub k1: f64,
    /// Length normalization strength (0 = none, 1 = full).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.5, b: 0.75 }
    }
}

/// An inverted-index-backed BM25 scorer.
#[derive(Debug, Clone)]
pub struct Bm25Index {
    params: Bm25Params,
    /// term -> postings of (doc_id, term_frequency). Ordered so that
    /// iteration (size accounting, debugging) is deterministic.
    postings: BTreeMap<String, Vec<(usize, u32)>>,
    /// Document lengths in tokens.
    doc_len: Vec<usize>,
    total_tokens: usize,
}

impl Default for Bm25Index {
    fn default() -> Self {
        Self::new(Bm25Params::default())
    }
}

impl Bm25Index {
    /// Creates an empty index with the given parameters.
    pub fn new(params: Bm25Params) -> Self {
        Self { params, postings: BTreeMap::new(), doc_len: Vec::new(), total_tokens: 0 }
    }

    /// Adds a document, returning its id (insertion order).
    pub fn add_document(&mut self, text: &str) -> usize {
        let terms: Vec<String> = tokenize_words(text).iter().map(|t| normalize_token(t)).collect();
        self.add_terms(&terms)
    }

    /// Adds a pre-normalized term list as a document, returning its id.
    pub fn add_terms(&mut self, terms: &[String]) -> usize {
        let doc_id = self.doc_len.len();
        self.doc_len.push(terms.len());
        self.total_tokens += terms.len();
        // BTreeMap: postings lists must grow in a deterministic term order.
        let mut tf: BTreeMap<&String, u32> = BTreeMap::new();
        for t in terms {
            *tf.entry(t).or_insert(0) += 1;
        }
        for (t, c) in tf {
            self.postings.entry(t.clone()).or_default().push((doc_id, c));
        }
        doc_id
    }

    /// Number of documents in the index.
    pub fn len(&self) -> usize {
        self.doc_len.len()
    }

    /// True when no documents have been added.
    pub fn is_empty(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// Inverted-index statistics for the planner's cost model:
    /// `(distinct terms, total postings, longest posting list)`.
    pub fn posting_stats(&self) -> (usize, usize, usize) {
        let mut total = 0usize;
        let mut max = 0usize;
        for posts in self.postings.values() {
            total += posts.len();
            max = max.max(posts.len());
        }
        (self.postings.len(), total, max)
    }

    /// Posting entries a search for `query` scans: the summed posting-list
    /// lengths of its normalized terms. This is exactly the work
    /// [`Self::search`] does for the same query (`top_k` only truncates
    /// the output), so it is a pure function of the query and the corpus —
    /// the resource-meter contract.
    pub fn postings_scanned(&self, query: &str) -> usize {
        tokenize_words(query)
            .iter()
            .map(|t| normalize_token(t))
            .map(|term| self.postings.get(&term).map_or(0, Vec::len))
            .sum()
    }

    /// Approximate resident size of the index in bytes (for the E2 storage
    /// experiment): postings entries plus term keys plus doc-length array.
    pub fn approx_bytes(&self) -> usize {
        let postings: usize = self
            .postings
            .iter()
            .map(|(k, v)| k.len() + v.len() * std::mem::size_of::<(usize, u32)>())
            .sum();
        postings + self.doc_len.len() * std::mem::size_of::<usize>()
    }

    fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_tokens as f64 / self.doc_len.len() as f64
        }
    }

    fn idf(&self, term: &str) -> f64 {
        let n = self.doc_len.len() as f64;
        let df = self.postings.get(term).map_or(0, Vec::len) as f64;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }

    /// Scores all matching documents for a raw-text query.
    ///
    /// Returns `(doc_id, score)` pairs sorted by descending score (ties by
    /// ascending id for determinism). Documents with no query term overlap
    /// are omitted.
    pub fn search(&self, query: &str, top_k: usize) -> Vec<(usize, f64)> {
        let terms: Vec<String> = tokenize_words(query).iter().map(|t| normalize_token(t)).collect();
        self.search_terms(&terms, top_k)
    }

    /// The scoring parameters.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// The postings table: term → `(doc_id, term_frequency)` pairs in
    /// insertion (ascending doc id) order. Used by the snapshot layer.
    pub fn postings(&self) -> &BTreeMap<String, Vec<(usize, u32)>> {
        &self.postings
    }

    /// Per-document token counts, indexed by doc id.
    pub fn doc_lens(&self) -> &[usize] {
        &self.doc_len
    }

    /// Reassembles an index from snapshot parts. The caller is trusted to
    /// pass parts that came from [`Self::postings`] / [`Self::doc_lens`];
    /// `total_tokens` is recomputed from the lengths.
    pub fn from_parts(
        params: Bm25Params,
        postings: BTreeMap<String, Vec<(usize, u32)>>,
        doc_len: Vec<usize>,
    ) -> Self {
        let total_tokens = doc_len.iter().sum();
        Self { params, postings, doc_len, total_tokens }
    }

    /// Like [`Self::search`] but with pre-normalized query terms.
    pub fn search_terms(&self, terms: &[String], top_k: usize) -> Vec<(usize, f64)> {
        let avg = self.avg_doc_len();
        let mut scores: BTreeMap<usize, f64> = BTreeMap::new();
        for term in terms {
            let Some(posts) = self.postings.get(term) else {
                continue;
            };
            let idf = self.idf(term);
            for &(doc, tf) in posts {
                let dl = self.doc_len[doc] as f64;
                let tf = f64::from(tf);
                let denom = tf
                    + self.params.k1 * (1.0 - self.params.b + self.params.b * dl / avg.max(1e-9));
                let s = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(doc).or_insert(0.0) += s;
            }
        }
        let mut out: Vec<(usize, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        out.truncate(top_k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bm25Index {
        let mut ix = Bm25Index::default();
        ix.add_document("the quick brown fox jumps over the lazy dog");
        ix.add_document("a fast auburn fox leaps above a sleepy hound");
        ix.add_document("quarterly sales report for product alpha");
        ix.add_document("alpha product sales grew twenty percent in the second quarter");
        ix
    }

    #[test]
    fn finds_relevant_doc_first() {
        let ix = sample();
        let hits = ix.search("alpha sales", 10);
        assert!(!hits.is_empty());
        assert!(hits[0].0 == 2 || hits[0].0 == 3);
    }

    #[test]
    fn irrelevant_query_returns_empty() {
        let ix = sample();
        assert!(ix.search("zebra xylophone", 10).is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let ix = sample();
        let hits = ix.search("fox sales", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scores_descend() {
        let ix = sample();
        let hits = ix.search("alpha product sales quarter", 10);
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn deterministic_tie_break() {
        let mut ix = Bm25Index::default();
        ix.add_document("same text here");
        ix.add_document("same text here");
        let hits = ix.search("same text", 10);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }

    #[test]
    fn stemming_matches_variants() {
        let ix = sample();
        // "jumps" indexed; query "jumping" should still hit doc 0.
        let hits = ix.search("jumping fox", 10);
        assert!(hits.iter().any(|&(d, _)| d == 0));
    }

    #[test]
    fn empty_index() {
        let ix = Bm25Index::default();
        assert!(ix.is_empty());
        assert!(ix.search("anything", 5).is_empty());
    }

    #[test]
    fn length_normalization_prefers_concise_doc() {
        let mut ix = Bm25Index::default();
        ix.add_document("fox");
        ix.add_document("fox and many many many many other completely unrelated words here");
        let hits = ix.search("fox", 2);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn postings_scanned_counts_matching_lists() {
        let ix = sample();
        // "fox" appears in docs 0 and 1; "zebra" is unindexed.
        assert_eq!(ix.postings_scanned("fox"), 2);
        assert_eq!(ix.postings_scanned("zebra"), 0);
        assert_eq!(ix.postings_scanned("fox zebra"), 2);
        // Repeated terms scan their posting list once per occurrence,
        // mirroring what search_terms actually does.
        assert_eq!(ix.postings_scanned("fox fox"), 4);
        assert!(ix.postings_scanned("alpha product sales quarter") > 0);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut ix = Bm25Index::default();
        let b0 = ix.approx_bytes();
        ix.add_document("some document text with several words");
        assert!(ix.approx_bytes() > b0);
    }
}
