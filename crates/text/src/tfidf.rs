//! Corpus statistics and TF-IDF weighting.

use std::collections::{BTreeMap, HashMap};

use crate::normalize::normalize_token;
use crate::tokenize::tokenize_words;

/// Document-frequency statistics over a corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Number of documents containing each term.
    doc_freq: HashMap<String, usize>,
    /// Total number of documents.
    num_docs: usize,
    /// Sum of document lengths in tokens (for average length).
    total_tokens: usize,
}

impl CorpusStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document's normalized terms to the statistics.
    pub fn add_document(&mut self, terms: &[String]) {
        self.num_docs += 1;
        self.total_tokens += terms.len();
        let mut seen = std::collections::HashSet::new();
        for t in terms {
            if seen.insert(t) {
                *self.doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents observed.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Average document length in tokens (0.0 for an empty corpus).
    pub fn avg_doc_len(&self) -> f64 {
        if self.num_docs == 0 {
            0.0
        } else {
            self.total_tokens as f64 / self.num_docs as f64
        }
    }

    /// Document frequency of `term` (how many documents contain it).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.doc_freq.get(term).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency: `ln(1 + (N - df + 0.5)/(df + 0.5))`.
    ///
    /// This is the BM25 IDF form, always non-negative.
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.num_docs as f64;
        let df = self.doc_freq(term) as f64;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }

    /// Number of distinct terms seen.
    pub fn vocab_size(&self) -> usize {
        self.doc_freq.len()
    }
}

/// Turns raw text into TF-IDF weighted term maps against fitted corpus stats.
#[derive(Debug, Clone, Default)]
pub struct TfIdfVectorizer {
    stats: CorpusStats,
}

impl TfIdfVectorizer {
    /// Creates an unfitted vectorizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalizes raw text into index terms (tokenize → lowercase → stem).
    pub fn terms(text: &str) -> Vec<String> {
        tokenize_words(text).iter().map(|t| normalize_token(t)).collect()
    }

    /// Fits the vectorizer on an iterator of documents.
    pub fn fit<'a, I: IntoIterator<Item = &'a str>>(&mut self, docs: I) {
        for d in docs {
            let terms = Self::terms(d);
            self.stats.add_document(&terms);
        }
    }

    /// Access the underlying corpus statistics.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Computes the TF-IDF map for one document.
    ///
    /// TF is log-scaled (`1 + ln(tf)`); IDF uses the smoothed BM25 form.
    /// Returned as a `BTreeMap` so callers iterating it (dot products,
    /// traces) see a deterministic term order.
    pub fn transform(&self, text: &str) -> BTreeMap<String, f64> {
        let terms = Self::terms(text);
        let mut tf: BTreeMap<String, usize> = BTreeMap::new();
        for t in terms {
            *tf.entry(t).or_insert(0) += 1;
        }
        tf.into_iter()
            .map(|(t, c)| {
                let w = (1.0 + (c as f64).ln()) * self.stats.idf(&t);
                (t, w)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cosine_terms;

    fn fit_sample() -> TfIdfVectorizer {
        let mut v = TfIdfVectorizer::new();
        v.fit(["the cat sat on the mat", "the dog sat on the log", "cats and dogs are pets"]);
        v
    }

    #[test]
    fn stats_counts() {
        let v = fit_sample();
        assert_eq!(v.stats().num_docs(), 3);
        assert!(v.stats().vocab_size() > 5);
        assert_eq!(v.stats().doc_freq(&normalize_token("sat")), 2);
    }

    #[test]
    fn idf_orders_rarity() {
        let v = fit_sample();
        let common = v.stats().idf(&normalize_token("the"));
        let rare = v.stats().idf(&normalize_token("mat"));
        assert!(rare > common);
    }

    #[test]
    fn idf_nonnegative_even_for_ubiquitous_terms() {
        let mut v = TfIdfVectorizer::new();
        v.fit(["a a", "a b", "a c"]);
        assert!(v.stats().idf("a") > 0.0);
    }

    #[test]
    fn transform_weights_repeats_sublinearly() {
        let v = fit_sample();
        let m1 = v.transform("mat");
        let m2 = v.transform("mat mat mat mat");
        let w1 = m1[&normalize_token("mat")];
        let w2 = m2[&normalize_token("mat")];
        assert!(w2 > w1);
        assert!(w2 < 4.0 * w1);
    }

    #[test]
    fn similar_docs_have_higher_cosine() {
        let v = fit_sample();
        let a = v.transform("the cat sat");
        let b = v.transform("a cat sat down");
        let c = v.transform("dogs are pets");
        assert!(cosine_terms(&a, &b) > cosine_terms(&a, &c));
    }

    #[test]
    fn stemming_conflates_in_transform() {
        let v = fit_sample();
        // "cats" in corpus doc 3; query "cat" should share the stemmed term.
        let q = v.transform("cat");
        let d = v.transform("cats");
        assert!(cosine_terms(&q, &d) > 0.9);
    }

    #[test]
    fn empty_corpus_and_doc() {
        let v = TfIdfVectorizer::new();
        assert_eq!(v.stats().num_docs(), 0);
        assert_eq!(v.stats().avg_doc_len(), 0.0);
        assert!(v.transform("").is_empty());
    }
}
