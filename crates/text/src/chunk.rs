//! Sentence-aligned document chunking.
//!
//! Chunks are the leaf nodes of the heterogeneous graph index (§III.A of the
//! paper): contiguous runs of sentences packed up to a token budget, with an
//! optional sentence overlap between consecutive chunks so entity mentions on
//! chunk boundaries are not lost.

use crate::sentence::split_sentences_spans;
use crate::tokenize::tokenize_words;

/// Configuration for [`chunk_sentences`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkConfig {
    /// Maximum number of word tokens per chunk.
    pub max_tokens: usize,
    /// Number of trailing sentences repeated at the start of the next chunk.
    pub overlap_sentences: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self { max_tokens: 128, overlap_sentences: 1 }
    }
}

/// A chunk of a source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Chunk text: the concatenated sentences, single-space joined.
    pub text: String,
    /// Index of this chunk within the document (0-based).
    pub index: usize,
    /// Byte offset of the chunk's first sentence in the source document.
    pub start: usize,
    /// Byte offset one past the chunk's last sentence.
    pub end: usize,
    /// Number of word tokens in the chunk.
    pub token_count: usize,
}

/// Splits a document into sentence-aligned chunks.
///
/// Sentences longer than `max_tokens` become their own (oversized) chunk —
/// they are never split mid-sentence, because the graph index relies on
/// chunks being syntactically coherent units.
///
/// ```
/// use unisem_text::{chunk_sentences, ChunkConfig};
/// let doc = "Alpha one. Beta two. Gamma three. Delta four.";
/// let cfg = ChunkConfig { max_tokens: 4, overlap_sentences: 0 };
/// let chunks = chunk_sentences(doc, cfg);
/// assert_eq!(chunks.len(), 2);
/// ```
pub fn chunk_sentences(text: &str, config: ChunkConfig) -> Vec<Chunk> {
    let sentences = split_sentences_spans(text);
    if sentences.is_empty() {
        return Vec::new();
    }
    let counts: Vec<usize> = sentences.iter().map(|s| tokenize_words(&s.text).len()).collect();

    let mut chunks = Vec::new();
    let mut i = 0usize;
    while i < sentences.len() {
        let mut tokens = counts[i];
        let mut j = i + 1;
        while j < sentences.len() && tokens + counts[j] <= config.max_tokens.max(1) {
            tokens += counts[j];
            j += 1;
        }
        let span = &sentences[i..j];
        let chunk_text: String = span.iter().map(|s| s.text.as_str()).collect::<Vec<_>>().join(" ");
        chunks.push(Chunk {
            text: chunk_text,
            index: chunks.len(),
            start: span[0].start,
            end: span[span.len() - 1].end,
            token_count: tokens,
        });
        if j >= sentences.len() {
            break;
        }
        // Advance with overlap, but always make progress.
        let next = j.saturating_sub(config.overlap_sentences).max(i + 1);
        i = next;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_small_doc_is_one_chunk() {
        let chunks = chunk_sentences("Hello world. Short doc.", ChunkConfig::default());
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].index, 0);
        assert_eq!(chunks[0].token_count, 4);
    }

    #[test]
    fn splits_when_over_budget() {
        let doc = "One two three. Four five six. Seven eight nine. Ten eleven twelve.";
        let cfg = ChunkConfig { max_tokens: 6, overlap_sentences: 0 };
        let chunks = chunk_sentences(doc, cfg);
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].text.contains("One"));
        assert!(chunks[1].text.contains("Seven"));
    }

    #[test]
    fn overlap_repeats_sentences() {
        let doc = "A b c. D e f. G h i. J k l.";
        let cfg = ChunkConfig { max_tokens: 6, overlap_sentences: 1 };
        let chunks = chunk_sentences(doc, cfg);
        assert!(chunks.len() >= 2);
        // The last sentence of chunk 0 starts chunk 1.
        let last_of_first = chunks[0].text.split(". ").last().unwrap().to_string();
        assert!(chunks[1].text.starts_with(last_of_first.trim_end_matches('.')));
    }

    #[test]
    fn oversized_sentence_is_own_chunk() {
        let doc = "one two three four five six seven eight. Tiny.";
        let cfg = ChunkConfig { max_tokens: 3, overlap_sentences: 0 };
        let chunks = chunk_sentences(doc, cfg);
        assert_eq!(chunks.len(), 2);
        assert!(chunks[0].token_count > 3);
    }

    #[test]
    fn empty_doc() {
        assert!(chunk_sentences("", ChunkConfig::default()).is_empty());
    }

    #[test]
    fn indices_are_sequential() {
        let doc = "S one. S two. S three. S four. S five. S six.";
        let cfg = ChunkConfig { max_tokens: 4, overlap_sentences: 1 };
        let chunks = chunk_sentences(doc, cfg);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn spans_point_into_source() {
        let doc = "Alpha beta gamma. Delta epsilon zeta. Eta theta iota.";
        let cfg = ChunkConfig { max_tokens: 5, overlap_sentences: 0 };
        for c in chunk_sentences(doc, cfg) {
            let slice = &doc[c.start..c.end];
            // The chunk text is the sentence texts joined by single spaces;
            // the source slice may have the same content (it does here).
            assert_eq!(slice, c.text);
        }
    }

    #[test]
    fn always_progresses_with_large_overlap() {
        // overlap >= sentences per chunk must not loop forever.
        let doc = "A b. C d. E f. G h.";
        let cfg = ChunkConfig { max_tokens: 4, overlap_sentences: 10 };
        let chunks = chunk_sentences(doc, cfg);
        assert!(!chunks.is_empty());
        assert!(chunks.len() <= 4);
    }
}
