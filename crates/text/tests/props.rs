//! Property-based tests for the text substrate (detkit harness).

use detkit::prop::{string_of, unicode_strings, usizes, vec_of, zip, zip3, Gen};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use unisem_text::{
    chunk_sentences, jaccard, levenshtein, normalized_levenshtein, split_sentences, stem, tokenize,
    ChunkConfig,
};

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const UPPER: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// `[A-Z][a-z]{1,8}( [a-z]{1,8}){0,6}` — a capitalized sentence.
fn sentences() -> Gen<String> {
    zip3(&string_of(UPPER, 1, 1), &string_of(LOWER, 1, 8), &vec_of(&string_of(LOWER, 1, 8), 0, 6))
        .map(|(cap, head, rest)| {
            let mut s = format!("{cap}{head}");
            for w in rest {
                s.push(' ');
                s.push_str(w);
            }
            s
        })
}

// Token spans always slice back to the token text.
prop_check!(token_spans_roundtrip, unicode_strings(0, 200), |s| {
    for t in tokenize(s) {
        prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
    }
    Ok(())
});

// Tokens never contain whitespace.
prop_check!(tokens_have_no_whitespace, unicode_strings(0, 200), |s| {
    for t in tokenize(s) {
        prop_assert!(!t.text.chars().any(char::is_whitespace));
    }
    Ok(())
});

// Sentence splitting loses no non-whitespace characters.
prop_check!(
    sentences_preserve_content,
    string_of("abcdefghij ABCXYZ 0123456789 .!?", 0, 300),
    |s| {
        let joined: String = split_sentences(s).join(" ");
        let strip = |x: &str| x.chars().filter(|c| !c.is_whitespace()).collect::<String>();
        prop_assert_eq!(strip(&joined), strip(s));
        Ok(())
    }
);

// Levenshtein satisfies the triangle inequality on small strings.
prop_check!(
    levenshtein_triangle,
    zip3(&string_of("abc", 0, 8), &string_of("abc", 0, 8), &string_of("abc", 0, 8)),
    |t| {
        let (a, b, c) = t;
        let ab = levenshtein(a, b);
        let bc = levenshtein(b, c);
        let ac = levenshtein(a, c);
        prop_assert!(ac <= ab + bc);
        Ok(())
    }
);

// Levenshtein is symmetric and zero iff equal.
prop_check!(levenshtein_metric, zip(&string_of("abcd", 0, 10), &string_of("abcd", 0, 10)), |t| {
    let (a, b) = t;
    prop_assert_eq!(levenshtein(a, b), levenshtein(b, a));
    prop_assert_eq!(levenshtein(a, b) == 0, a == b);
    Ok(())
});

// Normalized Levenshtein stays in [0, 1].
prop_check!(
    normalized_levenshtein_bounds,
    zip(&unicode_strings(0, 30), &unicode_strings(0, 30)),
    |t| {
        let (a, b) = t;
        let v = normalized_levenshtein(a, b);
        prop_assert!((0.0..=1.0).contains(&v));
        Ok(())
    }
);

// Jaccard stays in [0, 1] and is 1 for identical inputs.
prop_check!(jaccard_bounds, vec_of(&string_of("abcde", 1, 3), 0, 20), |xs| {
    let v = jaccard(xs, xs);
    prop_assert!(xs.is_empty() || (v - 1.0).abs() < 1e-12);
    let ys: Vec<String> = xs.iter().rev().cloned().collect();
    let w = jaccard(xs, &ys);
    prop_assert!((0.0..=1.0 + 1e-12).contains(&w));
    Ok(())
});

// Stemming is idempotent-ish: stable after two applications for plain
// lowercase words.
prop_check!(stem_never_grows_much, string_of(LOWER, 1, 15), |w| {
    let s = stem(w);
    prop_assert!(s.len() <= w.len() + 2);
    prop_assert!(!s.is_empty());
    Ok(())
});

// Chunking covers the document: every chunk maps into the source and
// chunk indices are sequential.
prop_check!(
    chunks_well_formed,
    zip3(&vec_of(&sentences(), 1, 11), &usizes(2, 19), &usizes(0, 2)),
    |t| {
        let (sents, max_tokens, overlap) = t;
        let doc = sents.join(". ") + ".";
        let cfg = ChunkConfig { max_tokens: *max_tokens, overlap_sentences: *overlap };
        let chunks = chunk_sentences(&doc, cfg);
        prop_assert!(!chunks.is_empty());
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.index, i);
            prop_assert!(c.start < c.end);
            prop_assert!(c.end <= doc.len());
        }
        // Chunks make forward progress.
        for w in chunks.windows(2) {
            prop_assert!(w[0].start < w[1].start || w[0].end < w[1].end);
        }
        Ok(())
    }
);
