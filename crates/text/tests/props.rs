//! Property-based tests for the text substrate.

use proptest::prelude::*;
use unisem_text::{
    chunk_sentences, jaccard, levenshtein, normalized_levenshtein, split_sentences, stem,
    tokenize, ChunkConfig,
};

proptest! {
    /// Token spans always slice back to the token text.
    #[test]
    fn token_spans_roundtrip(s in "\\PC{0,200}") {
        for t in tokenize(&s) {
            prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
        }
    }

    /// Tokens never contain whitespace.
    #[test]
    fn tokens_have_no_whitespace(s in "\\PC{0,200}") {
        for t in tokenize(&s) {
            prop_assert!(!t.text.chars().any(char::is_whitespace));
        }
    }

    /// Sentence splitting loses no non-whitespace characters.
    #[test]
    fn sentences_preserve_content(s in "[a-zA-Z0-9 .!?]{0,300}") {
        let joined: String = split_sentences(&s).join(" ");
        let strip = |x: &str| x.chars().filter(|c| !c.is_whitespace()).collect::<String>();
        prop_assert_eq!(strip(&joined), strip(&s));
    }

    /// Levenshtein satisfies the triangle inequality on small strings.
    #[test]
    fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    /// Levenshtein is symmetric and zero iff equal.
    #[test]
    fn levenshtein_metric(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
    }

    /// Normalized Levenshtein stays in [0, 1].
    #[test]
    fn normalized_levenshtein_bounds(a in "\\PC{0,30}", b in "\\PC{0,30}") {
        let v = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// Jaccard stays in [0, 1] and is 1 for identical inputs.
    #[test]
    fn jaccard_bounds(xs in proptest::collection::vec("[a-e]{1,3}", 0..20)) {
        let v = jaccard(&xs, &xs);
        prop_assert!(xs.is_empty() || (v - 1.0).abs() < 1e-12);
        let ys: Vec<String> = xs.iter().rev().cloned().collect();
        let w = jaccard(&xs, &ys);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&w));
    }

    /// Stemming is idempotent-ish: stable after two applications for plain
    /// lowercase words.
    #[test]
    fn stem_never_grows_much(w in "[a-z]{1,15}") {
        let s = stem(&w);
        prop_assert!(s.len() <= w.len() + 2);
        prop_assert!(!s.is_empty());
    }

    /// Chunking covers the document: every chunk maps into the source and
    /// chunk indices are sequential.
    #[test]
    fn chunks_well_formed(
        sents in proptest::collection::vec("[A-Z][a-z]{1,8}( [a-z]{1,8}){0,6}", 1..12),
        max_tokens in 2usize..20,
        overlap in 0usize..3,
    ) {
        let doc = sents.join(". ") + ".";
        let cfg = ChunkConfig { max_tokens, overlap_sentences: overlap };
        let chunks = chunk_sentences(&doc, cfg);
        prop_assert!(!chunks.is_empty());
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.index, i);
            prop_assert!(c.start < c.end);
            prop_assert!(c.end <= doc.len());
        }
        // Chunks make forward progress.
        for w in chunks.windows(2) {
            prop_assert!(w[0].start < w[1].start || w[0].end < w[1].end);
        }
    }
}
