//! Inference cost model and usage metering.
//!
//! §I of the paper motivates SLMs with resource constraints: "LLM-based
//! methods … demand substantial computational resources … impractical for
//! applications requiring low-latency responses or deployment on devices
//! with limited memory". To *measure* that trade-off (experiment E8) rather
//! than assert it, every simulated model call is charged to a [`CostMeter`],
//! and a [`CostModel`] converts token counts into simulated latency, memory,
//! and energy figures.
//!
//! The constants are calibrated to public inference numbers circa 2024-2025:
//! a ~1.8B-parameter SLM served on a laptop/edge CPU-GPU versus a
//! ~70B-parameter LLM served on a datacenter A100-class GPU. Absolute values
//! matter less than the ~20–40× throughput gap, which is what the
//! efficiency experiments exercise.

use std::sync::Arc;

use std::sync::Mutex;

/// Which model scale a cost model describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelClass {
    /// Small language model (~1–3B parameters, edge-deployable).
    SlmClass,
    /// Large language model (~70B parameters, datacenter-served).
    LlmClass,
}

/// Token-level cost constants for one model class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Parameter count in billions (drives memory footprint).
    pub params_b: f64,
    /// Prefill (prompt ingestion) throughput, tokens/second.
    pub prefill_tps: f64,
    /// Decode (generation) throughput, tokens/second.
    pub decode_tps: f64,
    /// Resident memory for weights + KV cache, gigabytes.
    pub memory_gb: f64,
    /// Energy per processed token, joules.
    pub energy_j_per_token: f64,
}

impl CostModel {
    /// The calibrated constants for a model class.
    pub fn for_class(class: ModelClass) -> Self {
        match class {
            // ~1.8B model, int8, on an edge device (MobileLLM-class, [5] in
            // the paper's references).
            ModelClass::SlmClass => Self {
                params_b: 1.8,
                prefill_tps: 2400.0,
                decode_tps: 140.0,
                memory_gb: 2.2,
                energy_j_per_token: 0.04,
            },
            // ~70B model, fp16, on an A100-class accelerator.
            ModelClass::LlmClass => Self {
                params_b: 70.0,
                prefill_tps: 6000.0,
                decode_tps: 35.0,
                memory_gb: 145.0,
                energy_j_per_token: 1.1,
            },
        }
    }

    /// Simulated wall-clock seconds for a call with the given token counts.
    ///
    /// Embedding/tagging passes are prefill-only; generation adds decode.
    pub fn latency_secs(&self, prefill_tokens: usize, decode_tokens: usize) -> f64 {
        prefill_tokens as f64 / self.prefill_tps + decode_tokens as f64 / self.decode_tps
    }

    /// Simulated energy in joules for the given token counts.
    pub fn energy_joules(&self, total_tokens: usize) -> f64 {
        total_tokens as f64 * self.energy_j_per_token
    }
}

/// An immutable snapshot of accumulated usage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UsageSnapshot {
    /// Tokens processed by embedding passes.
    pub embed_tokens: usize,
    /// Tokens processed by entity-tagging passes.
    pub tag_tokens: usize,
    /// Prompt (prefill) tokens across generation calls.
    pub prompt_tokens: usize,
    /// Generated (decode) tokens across generation calls.
    pub decode_tokens: usize,
    /// Number of embedding calls.
    pub embed_calls: usize,
    /// Number of tagging calls.
    pub tag_calls: usize,
    /// Number of generation calls.
    pub generate_calls: usize,
}

impl UsageSnapshot {
    /// All tokens that passed through the model.
    pub fn total_tokens(&self) -> usize {
        self.embed_tokens + self.tag_tokens + self.prompt_tokens + self.decode_tokens
    }

    /// Total number of model invocations.
    pub fn total_calls(&self) -> usize {
        self.embed_calls + self.tag_calls + self.generate_calls
    }
}

#[derive(Debug, Default)]
struct MeterInner {
    usage: UsageSnapshot,
}

/// Thread-safe usage ledger shared by all components of one pipeline.
#[derive(Debug, Clone)]
pub struct CostMeter {
    inner: Arc<Mutex<MeterInner>>,
    model: CostModel,
}

impl CostMeter {
    /// Creates a meter charging against `model`.
    pub fn new(model: CostModel) -> Self {
        Self { inner: Arc::new(Mutex::new(MeterInner::default())), model }
    }

    /// The cost model in effect.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Records an embedding pass over `tokens`.
    pub fn record_embed(&self, tokens: usize) {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.usage.embed_tokens += tokens;
        g.usage.embed_calls += 1;
    }

    /// Records a tagging pass over `tokens`.
    pub fn record_tag(&self, tokens: usize) {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.usage.tag_tokens += tokens;
        g.usage.tag_calls += 1;
    }

    /// Records a generation call.
    pub fn record_generate(&self, prompt_tokens: usize, decode_tokens: usize) {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.usage.prompt_tokens += prompt_tokens;
        g.usage.decode_tokens += decode_tokens;
        g.usage.generate_calls += 1;
    }

    /// Current accumulated usage.
    pub fn snapshot(&self) -> UsageSnapshot {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).usage
    }

    /// Resets the ledger to zero and returns the final snapshot.
    pub fn reset(&self) -> UsageSnapshot {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut g.usage)
    }

    /// Simulated total latency implied by the accumulated usage.
    pub fn simulated_latency_secs(&self) -> f64 {
        let u = self.snapshot();
        self.model.latency_secs(u.embed_tokens + u.tag_tokens + u.prompt_tokens, u.decode_tokens)
    }

    /// Simulated total energy implied by the accumulated usage.
    pub fn simulated_energy_joules(&self) -> f64 {
        self.model.energy_joules(self.snapshot().total_tokens())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_constants_ordered() {
        let slm = CostModel::for_class(ModelClass::SlmClass);
        let llm = CostModel::for_class(ModelClass::LlmClass);
        assert!(slm.memory_gb < llm.memory_gb);
        assert!(slm.decode_tps > llm.decode_tps);
        assert!(slm.energy_j_per_token < llm.energy_j_per_token);
    }

    #[test]
    fn latency_composition() {
        let m = CostModel::for_class(ModelClass::SlmClass);
        let prefill_only = m.latency_secs(1000, 0);
        let with_decode = m.latency_secs(1000, 100);
        assert!(with_decode > prefill_only);
        // Decode dominates: 100 decode tokens cost more than 1000 prefill.
        assert!(m.latency_secs(0, 100) > m.latency_secs(1000, 0));
    }

    #[test]
    fn meter_accumulates() {
        let m = CostMeter::new(CostModel::for_class(ModelClass::SlmClass));
        m.record_embed(10);
        m.record_tag(20);
        m.record_generate(30, 5);
        let s = m.snapshot();
        assert_eq!(s.embed_tokens, 10);
        assert_eq!(s.tag_tokens, 20);
        assert_eq!(s.prompt_tokens, 30);
        assert_eq!(s.decode_tokens, 5);
        assert_eq!(s.total_tokens(), 65);
        assert_eq!(s.total_calls(), 3);
    }

    #[test]
    fn reset_returns_and_clears() {
        let m = CostMeter::new(CostModel::for_class(ModelClass::SlmClass));
        m.record_embed(10);
        let s = m.reset();
        assert_eq!(s.embed_tokens, 10);
        assert_eq!(m.snapshot(), UsageSnapshot::default());
    }

    #[test]
    fn clones_share_ledger() {
        let m = CostMeter::new(CostModel::for_class(ModelClass::SlmClass));
        let c = m.clone();
        c.record_tag(7);
        assert_eq!(m.snapshot().tag_tokens, 7);
    }

    #[test]
    fn simulated_latency_positive() {
        let m = CostMeter::new(CostModel::for_class(ModelClass::LlmClass));
        m.record_generate(500, 50);
        assert!(m.simulated_latency_secs() > 0.0);
        assert!(m.simulated_energy_joules() > 0.0);
    }

    #[test]
    fn slm_cheaper_than_llm_for_same_usage() {
        let slm = CostMeter::new(CostModel::for_class(ModelClass::SlmClass));
        let llm = CostMeter::new(CostModel::for_class(ModelClass::LlmClass));
        for m in [&slm, &llm] {
            m.record_generate(400, 80);
        }
        assert!(slm.simulated_latency_secs() < llm.simulated_latency_secs());
        assert!(slm.simulated_energy_joules() < llm.simulated_energy_joules());
    }

    #[test]
    fn poisoned_lock_recovers() {
        // Poison the ledger mutex: panic while holding the guard. Every
        // meter entry point recovers via `PoisonError::into_inner`, so a
        // panicking worker thread must not take the meter down with it.
        let m = CostMeter::new(CostModel::for_class(ModelClass::SlmClass));
        m.record_embed(5);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.inner.lock().unwrap();
            panic!("poison the meter");
        }));
        assert!(m.inner.is_poisoned(), "mutex must be poisoned for this test to mean anything");
        // Recording, snapshotting, and resetting all still work, and the
        // pre-poison state survives (the guard holder never mutated).
        m.record_tag(7);
        let s = m.snapshot();
        assert_eq!(s.embed_tokens, 5);
        assert_eq!(s.tag_tokens, 7);
        assert!(m.simulated_latency_secs() > 0.0);
        let final_s = m.reset();
        assert_eq!(final_s.tag_tokens, 7);
        assert_eq!(m.snapshot(), UsageSnapshot::default());
        m.record_generate(3, 1);
        assert_eq!(m.snapshot().generate_calls, 1);
    }

    #[test]
    fn concurrent_recording() {
        let m = CostMeter::new(CostModel::for_class(ModelClass::SlmClass));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        m.record_embed(1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().embed_tokens, 800);
        assert_eq!(m.snapshot().embed_calls, 800);
    }
}
