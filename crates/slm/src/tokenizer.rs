//! Deterministic subword tokenization.
//!
//! Real SLMs count costs in subword tokens. This module provides a stable
//! approximation: words are split greedily into pieces of at most
//! [`MAX_PIECE_CHARS`] characters, preferring splits at common English
//! morpheme boundaries. The resulting counts track BPE token counts closely
//! enough for relative cost comparisons (the only use the experiments make
//! of them).

use unisem_text::tokenize::{tokenize, TokenKind};

/// Maximum characters per subword piece.
pub const MAX_PIECE_CHARS: usize = 6;

/// Common suffixes that get their own piece, mimicking BPE merges.
const SUFFIXES: &[&str] = &[
    "ation", "ments", "ingly", "ness", "ment", "tion", "able", "ible", "ized", "izes", "ing", "ed",
    "er", "es", "ly", "s",
];

/// Splits a single word into subword pieces.
///
/// ```
/// use unisem_slm::subword_tokenize;
/// let pieces = subword_tokenize("internationalization");
/// assert!(pieces.len() > 2);
/// assert_eq!(pieces.concat(), "internationalization");
/// ```
pub fn subword_tokenize(word: &str) -> Vec<String> {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() <= MAX_PIECE_CHARS {
        return vec![word.to_string()];
    }
    // Peel one known suffix if present and the stem stays non-trivial.
    for suf in SUFFIXES {
        if word.len() > suf.len() + 2 {
            if let Some(stem) = word.strip_suffix(suf) {
                let mut pieces = subword_tokenize(stem);
                pieces.push((*suf).to_string());
                return pieces;
            }
        }
    }
    // Otherwise split into fixed-width pieces.
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let end = (i + MAX_PIECE_CHARS).min(chars.len());
        pieces.push(chars[i..end].iter().collect());
        i = end;
    }
    pieces
}

/// Counts subword tokens in arbitrary text.
///
/// Words are subword-split; numbers and punctuation count one token each.
/// This is the unit every [`crate::cost::CostMeter`] charge uses.
pub fn count_tokens(text: &str) -> usize {
    tokenize(text)
        .iter()
        .map(|t| match t.kind {
            TokenKind::Word => subword_tokenize(&t.text).len(),
            TokenKind::Number | TokenKind::Punct => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_words_single_piece() {
        assert_eq!(subword_tokenize("cat"), vec!["cat"]);
        assert_eq!(subword_tokenize("saless"), vec!["saless"]);
    }

    #[test]
    fn long_words_split() {
        let pieces = subword_tokenize("heterogeneous");
        assert!(pieces.len() >= 2);
        assert_eq!(pieces.concat(), "heterogeneous");
    }

    #[test]
    fn suffix_peeled() {
        let pieces = subword_tokenize("integrating");
        assert_eq!(pieces.last().map(String::as_str), Some("ing"));
    }

    #[test]
    fn concat_always_roundtrips() {
        for w in ["a", "extraordinary", "antidisestablishmentarianism", "databases"] {
            assert_eq!(subword_tokenize(w).concat(), w);
        }
    }

    #[test]
    fn count_tokens_empty() {
        assert_eq!(count_tokens(""), 0);
    }

    #[test]
    fn count_tokens_scales_with_length() {
        let short = count_tokens("sales rose");
        let long = count_tokens("sales rose dramatically across heterogeneous marketplaces");
        assert!(long > short);
    }

    #[test]
    fn numbers_and_punct_count_one() {
        assert_eq!(count_tokens("12,345.67 %"), 2);
    }
}
