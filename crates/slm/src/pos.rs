//! Part-of-speech-lite tagging.
//!
//! §III.C names part-of-speech tagging as one of the techniques the SLM uses
//! for relational table generation. This is a closed-class + suffix +
//! position tagger: crude by NLP standards, but sufficient to distinguish
//! the verb/noun/number/modifier structure the extraction rules consume.

use unisem_text::tokenize::{tokenize, Token, TokenKind};

/// Coarse part-of-speech tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Common noun.
    Noun,
    /// Proper noun (capitalized, not sentence-initial-only).
    ProperNoun,
    /// Verb (incl. auxiliaries).
    Verb,
    /// Adjective.
    Adjective,
    /// Adverb.
    Adverb,
    /// Determiner / article.
    Determiner,
    /// Preposition or subordinating conjunction.
    Preposition,
    /// Coordinating conjunction.
    Conjunction,
    /// Pronoun.
    Pronoun,
    /// Cardinal number.
    Number,
    /// Punctuation or symbol.
    Punct,
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "each", "every", "all", "some", "any", "no",
];
const PREPOSITIONS: &[&str] = &[
    "in", "on", "at", "by", "for", "from", "to", "of", "with", "over", "under", "between",
    "during", "after", "before", "above", "across", "into", "through", "per",
];
const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor", "yet", "so"];
const PRONOUNS: &[&str] = &[
    "i", "you", "he", "she", "it", "we", "they", "them", "him", "her", "us", "who", "which", "what",
];
const COMMON_VERBS: &[&str] = &[
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "has",
    "have",
    "had",
    "do",
    "does",
    "did",
    "increased",
    "decreased",
    "rose",
    "fell",
    "grew",
    "dropped",
    "reported",
    "received",
    "purchased",
    "bought",
    "sold",
    "prescribed",
    "shipped",
    "returned",
    "rated",
    "reached",
    "improved",
    "declined",
    "gained",
    "lost",
    "recorded",
    "totaled",
    "averaged",
    "exceeded",
    "launched",
    "announced",
    "posted",
    "climbed",
    "surged",
    "slipped",
    "jumped",
];
const COMMON_ADVERBS: &[&str] = &[
    "very",
    "quite",
    "strongly",
    "sharply",
    "slightly",
    "significantly",
    "nearly",
    "almost",
    "only",
    "also",
    "however",
    "moreover",
];

/// Tags each token of `text` with a coarse part of speech.
///
/// Returns the tokens paired with tags; punctuation tokens get
/// [`PosTag::Punct`].
pub fn pos_tag(text: &str) -> Vec<(Token, PosTag)> {
    let tokens = tokenize(text);
    let n = tokens.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = &tokens[i];
        let tag = match t.kind {
            TokenKind::Punct => PosTag::Punct,
            TokenKind::Number => PosTag::Number,
            TokenKind::Word => word_tag(t, i, &tokens),
        };
        out.push((t.clone(), tag));
    }
    out
}

fn word_tag(t: &Token, i: usize, tokens: &[Token]) -> PosTag {
    let lower = t.lower();
    let l = lower.as_str();
    if DETERMINERS.contains(&l) {
        return PosTag::Determiner;
    }
    if PREPOSITIONS.contains(&l) {
        return PosTag::Preposition;
    }
    if CONJUNCTIONS.contains(&l) {
        return PosTag::Conjunction;
    }
    if PRONOUNS.contains(&l) {
        return PosTag::Pronoun;
    }
    if COMMON_VERBS.contains(&l) {
        return PosTag::Verb;
    }
    if COMMON_ADVERBS.contains(&l) || (l.ends_with("ly") && l.len() > 4) {
        return PosTag::Adverb;
    }
    // Proper noun: capitalized and either not sentence-initial or part of a
    // capitalized run.
    let sentence_initial = i == 0 || matches!(tokens[i - 1].text.as_str(), "." | "!" | "?");
    if t.is_capitalized() {
        let next_cap =
            tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Word && n.is_capitalized());
        if !sentence_initial || next_cap || t.is_acronym() {
            return PosTag::ProperNoun;
        }
    }
    // Verb morphology after a pronoun/noun subject: -ed past tense.
    if l.ends_with("ed") && l.len() > 4 {
        return PosTag::Verb;
    }
    // Gerund acting verbal when preceded by is/are/was/were.
    if l.ends_with("ing") && l.len() > 5 {
        let prev_verb = i > 0 && COMMON_VERBS.contains(&tokens[i - 1].lower().as_str());
        return if prev_verb { PosTag::Verb } else { PosTag::Noun };
    }
    if l.ends_with("ous")
        || l.ends_with("ful")
        || l.ends_with("ive")
        || l.ends_with("ible")
        || l.ends_with("able")
        || l.ends_with("al")
    {
        return PosTag::Adjective;
    }
    PosTag::Noun
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(text: &str) -> Vec<(String, PosTag)> {
        pos_tag(text).into_iter().map(|(t, p)| (t.text, p)).collect()
    }

    #[test]
    fn closed_classes() {
        let t = tags("the sales of products");
        assert_eq!(t[0].1, PosTag::Determiner);
        assert_eq!(t[2].1, PosTag::Preposition);
    }

    #[test]
    fn domain_verbs() {
        let t = tags("sales increased sharply");
        assert_eq!(t[1].1, PosTag::Verb);
        assert_eq!(t[2].1, PosTag::Adverb);
    }

    #[test]
    fn numbers_and_punct() {
        let t = tags("grew 20 %");
        assert_eq!(t[1].1, PosTag::Number);
        assert_eq!(t[2].1, PosTag::Punct);
    }

    #[test]
    fn proper_noun_mid_sentence() {
        let t = tags("we met Alice yesterday");
        assert_eq!(t[2].1, PosTag::ProperNoun);
    }

    #[test]
    fn sentence_initial_common_word_not_proper() {
        let t = tags("The report arrived");
        assert_eq!(t[0].1, PosTag::Determiner);
        // "Report" capitalized at start would be noun, not proper:
        let t2 = tags("Revenue increased");
        assert_eq!(t2[0].1, PosTag::Noun);
    }

    #[test]
    fn capitalized_run_at_start_is_proper() {
        let t = tags("Acme Corp announced profits");
        assert_eq!(t[0].1, PosTag::ProperNoun);
        assert_eq!(t[1].1, PosTag::ProperNoun);
    }

    #[test]
    fn ed_suffix_verb() {
        let t = tags("the firm outperformed rivals");
        assert_eq!(t[2].1, PosTag::Verb);
    }

    #[test]
    fn adjective_suffixes() {
        let t = tags("a reliable profitable device");
        assert_eq!(t[1].1, PosTag::Adjective);
        assert_eq!(t[2].1, PosTag::Adjective);
    }

    #[test]
    fn gerund_noun_vs_verb() {
        let t = tags("pricing is falling");
        assert_eq!(t[0].1, PosTag::Noun);
        assert_eq!(t[2].1, PosTag::Verb);
    }

    #[test]
    fn empty() {
        assert!(pos_tag("").is_empty());
    }
}
