//! Feature-hashed character-n-gram embeddings.
//!
//! Stand-in for learned dense vectors: each word is embedded as the signed
//! sum of hashed character n-grams (fastText-style), and a text embedding is
//! the stopword-filtered mean of its word vectors. The result has the two
//! properties the system relies on:
//!
//! 1. **Morphological robustness** — `purchase`/`purchases` land close,
//! 2. **Lexical-overlap sensitivity** — sentences sharing content words are
//!    more similar than unrelated ones.
//!
//! It is *not* a semantic model (no distributional training), which is
//! exactly why the heterogeneous graph index carries the semantic burden in
//! this reproduction — mirroring the paper's argument that SLM-class
//! embeddings are weak and must be compensated by structure (§I, §III.A).

use unisem_text::ngram::char_ngrams_range;
use unisem_text::normalize::is_stopword;
use unisem_text::tokenize::tokenize_words;

/// FNV-1a 64-bit hash: stable across platforms and runs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Configuration for [`Embedder`].
#[derive(Debug, Clone)]
pub struct EmbedderConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Smallest character n-gram size.
    pub min_ngram: usize,
    /// Largest character n-gram size.
    pub max_ngram: usize,
    /// Whether to drop stopwords when embedding multi-word text.
    pub drop_stopwords: bool,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        Self { dim: 256, min_ngram: 3, max_ngram: 5, drop_stopwords: true }
    }
}

/// Deterministic feature-hashing embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    config: EmbedderConfig,
}

impl Default for Embedder {
    fn default() -> Self {
        Self::new(EmbedderConfig::default())
    }
}

impl Embedder {
    /// Creates an embedder; `config.dim` must be non-zero.
    pub fn new(config: EmbedderConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be non-zero");
        assert!(config.min_ngram > 0 && config.min_ngram <= config.max_ngram);
        Self { config }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Embeds a single word (L2-normalized).
    pub fn embed_word(&self, word: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.config.dim];
        let lower = word.to_lowercase();
        // Whole-word feature gets double weight so exact matches dominate.
        self.add_feature(&mut v, &format!("w:{lower}"), 2.0);
        for g in char_ngrams_range(&lower, self.config.min_ngram, self.config.max_ngram) {
            self.add_feature(&mut v, &g, 1.0);
        }
        l2_normalize(&mut v);
        v
    }

    /// Embeds arbitrary text as the mean of its word embeddings
    /// (stopword-filtered when configured), L2-normalized.
    ///
    /// Returns the zero vector for text with no content words.
    pub fn embed_text(&self, text: &str) -> Vec<f32> {
        let words = tokenize_words(text);
        let content: Vec<&String> = if self.config.drop_stopwords {
            let kept: Vec<&String> = words.iter().filter(|w| !is_stopword(w)).collect();
            if kept.is_empty() {
                words.iter().collect()
            } else {
                kept
            }
        } else {
            words.iter().collect()
        };
        let mut v = vec![0.0f32; self.config.dim];
        if content.is_empty() {
            return v;
        }
        for w in &content {
            let wv = self.embed_word(w);
            for (a, b) in v.iter_mut().zip(wv.iter()) {
                *a += b;
            }
        }
        l2_normalize(&mut v);
        v
    }

    fn add_feature(&self, v: &mut [f32], feature: &str, weight: f32) {
        let h = fnv1a(feature.as_bytes());
        let idx = (h % self.config.dim as u64) as usize;
        // A second hash bit decides the sign, which keeps hashed features
        // approximately zero-mean (hashing-trick variance reduction).
        let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
        v[idx] += sign * weight;
    }
}

/// Normalizes `v` to unit L2 norm in place (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_text::similarity::cosine_dense;

    #[test]
    fn deterministic() {
        let e = Embedder::default();
        assert_eq!(e.embed_text("hello world"), e.embed_text("hello world"));
    }

    #[test]
    fn unit_norm() {
        let e = Embedder::default();
        let v = e.embed_text("quarterly sales report");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_for_empty() {
        let e = Embedder::default();
        let v = e.embed_text("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn morphological_neighbors_close() {
        let e = Embedder::default();
        let a = e.embed_word("purchase");
        let b = e.embed_word("purchases");
        let c = e.embed_word("zebra");
        assert!(cosine_dense(&a, &b) > cosine_dense(&a, &c));
        assert!(cosine_dense(&a, &b) > 0.5);
    }

    #[test]
    fn overlapping_sentences_closer() {
        let e = Embedder::default();
        let a = e.embed_text("the sales of product alpha increased");
        let b = e.embed_text("product alpha sales grew");
        let c = e.embed_text("patient reported severe headaches");
        assert!(cosine_dense(&a, &b) > cosine_dense(&a, &c));
    }

    #[test]
    fn stopwords_do_not_dominate() {
        let e = Embedder::default();
        let a = e.embed_text("the of and sales");
        let b = e.embed_text("sales");
        assert!(cosine_dense(&a, &b) > 0.95);
    }

    #[test]
    fn stopword_only_text_still_embeds() {
        let e = Embedder::default();
        let v = e.embed_text("the of and");
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn respects_custom_dim() {
        let e = Embedder::new(EmbedderConfig { dim: 64, ..EmbedderConfig::default() });
        assert_eq!(e.embed_text("abc").len(), 64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_panics() {
        Embedder::new(EmbedderConfig { dim: 0, ..EmbedderConfig::default() });
    }

    #[test]
    fn fnv_known_values_stable() {
        // Lock the hash so index layouts never drift between runs/platforms.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
