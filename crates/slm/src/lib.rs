//! # unisem-slm
//!
//! A **simulated Small Language Model** — the substitution documented in
//! DESIGN.md §2. No open-weight model can be downloaded in this offline
//! environment, so this crate provides a deterministic stand-in exposing the
//! same capability surface the paper requires from its SLM:
//!
//! - [`tokenizer`]: subword tokenization with stable token counting (the
//!   unit of the cost model),
//! - [`embedding`]: feature-hashed character-n-gram embeddings (the stand-in
//!   for learned dense vectors),
//! - [`ner`]: lexicon- and rule-based named entity recognition (§III.A's
//!   "lightweight SLM-based tagging"),
//! - [`pos`]: part-of-speech-lite tagging used by relational table
//!   generation (§III.C),
//! - [`generate`]: evidence-constrained answer generation with
//!   temperature-controlled sampling — the code path semantic entropy
//!   (§III.D) measures,
//! - [`cost`]: a calibrated token/latency/memory cost model distinguishing
//!   SLM-class from LLM-class inference, so the paper's efficiency claims
//!   (§I) can be *measured* rather than asserted.
//!
//! Determinism: every stochastic path takes an explicit seed; two runs with
//! the same seed produce identical outputs.

pub mod cost;
pub mod embedding;
pub mod generate;
pub mod ner;
pub mod pos;
pub mod tokenizer;

pub use cost::{CostMeter, CostModel, ModelClass, UsageSnapshot};
pub use embedding::{Embedder, EmbedderConfig};
pub use generate::{GenConfig, Generation, Generator, SupportedAnswer};
pub use ner::{EntityKind, EntityMention, Lexicon, NerTagger};
pub use pos::{pos_tag, PosTag};
pub use tokenizer::{count_tokens, subword_tokenize};

use std::sync::Arc;

/// Configuration for constructing an [`Slm`].
#[derive(Debug, Clone)]
pub struct SlmConfig {
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Model class used for cost accounting.
    pub class: ModelClass,
    /// Domain lexicon for entity tagging (the SLM's "world knowledge").
    pub lexicon: Lexicon,
    /// Base seed for all stochastic generation paths.
    pub seed: u64,
}

impl Default for SlmConfig {
    fn default() -> Self {
        Self {
            embed_dim: 256,
            class: ModelClass::SlmClass,
            lexicon: Lexicon::default(),
            seed: 0x5eed,
        }
    }
}

/// The simulated Small Language Model: a bundle of capabilities plus a
/// shared cost meter.
///
/// Cloning an `Slm` is cheap; clones share the same cost meter, so usage
/// accumulated by pipeline components all lands in one ledger.
#[derive(Debug, Clone)]
pub struct Slm {
    embedder: Arc<Embedder>,
    ner: Arc<NerTagger>,
    generator: Arc<Generator>,
    meter: CostMeter,
    class: ModelClass,
    seed: u64,
}

impl Default for Slm {
    fn default() -> Self {
        Self::new(SlmConfig::default())
    }
}

impl Slm {
    /// Builds an SLM from configuration.
    pub fn new(config: SlmConfig) -> Self {
        let meter = CostMeter::new(CostModel::for_class(config.class));
        Self {
            embedder: Arc::new(Embedder::new(EmbedderConfig {
                dim: config.embed_dim,
                ..EmbedderConfig::default()
            })),
            ner: Arc::new(NerTagger::new(config.lexicon)),
            generator: Arc::new(Generator::new(config.seed)),
            meter,
            class: config.class,
            seed: config.seed,
        }
    }

    /// The model class (SLM vs LLM) this instance simulates.
    pub fn class(&self) -> ModelClass {
        self.class
    }

    /// Base seed for stochastic paths.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Embeds text into a dense vector, charging the cost meter one
    /// embedding pass over the text's tokens.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        self.meter.record_embed(count_tokens(text));
        self.embedder.embed_text(text)
    }

    /// Embedding dimensionality.
    pub fn embed_dim(&self) -> usize {
        self.embedder.dim()
    }

    /// Direct access to the embedder (no cost accounting) for bulk offline
    /// indexing paths that account for cost at a coarser granularity.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// Tags named entities in `text`, charging one tagging pass.
    pub fn tag_entities(&self, text: &str) -> Vec<EntityMention> {
        self.meter.record_tag(count_tokens(text));
        self.ner.tag(text)
    }

    /// Access to the NER tagger (no cost accounting).
    pub fn ner(&self) -> &NerTagger {
        &self.ner
    }

    /// Generates sampled answers for a query given weighted evidence,
    /// charging one prefill over the prompt and decode per answer.
    pub fn sample_answers(
        &self,
        query: &str,
        evidence: &[SupportedAnswer],
        config: &GenConfig,
    ) -> Vec<Generation> {
        let prompt_tokens =
            count_tokens(query) + evidence.iter().map(|e| count_tokens(&e.text)).sum::<usize>();
        let gens = self.generator.sample(query, evidence, config);
        let decode_tokens: usize = gens.iter().map(|g| count_tokens(&g.text)).sum();
        self.meter.record_generate(prompt_tokens, decode_tokens);
        gens
    }

    /// The shared cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_constructs() {
        let slm = Slm::default();
        assert_eq!(slm.class(), ModelClass::SlmClass);
        assert_eq!(slm.embed_dim(), 256);
    }

    #[test]
    fn embed_charges_meter() {
        let slm = Slm::default();
        let before = slm.meter().snapshot().embed_tokens;
        slm.embed("some text to embed");
        assert!(slm.meter().snapshot().embed_tokens > before);
    }

    #[test]
    fn clones_share_meter() {
        let slm = Slm::default();
        let clone = slm.clone();
        clone.embed("shared ledger");
        assert!(slm.meter().snapshot().embed_tokens > 0);
    }

    #[test]
    fn deterministic_embeddings() {
        let a = Slm::default();
        let b = Slm::default();
        assert_eq!(a.embed("Q2 sales increased"), b.embed("Q2 sales increased"));
    }

    #[test]
    fn sample_answers_charges_generation() {
        let slm = Slm::default();
        let evidence = vec![SupportedAnswer::new("42 units", 1.0)];
        let gens = slm.sample_answers("How many units?", &evidence, &GenConfig::default());
        assert!(!gens.is_empty());
        let snap = slm.meter().snapshot();
        assert!(snap.prompt_tokens > 0);
        assert!(snap.decode_tokens > 0);
    }
}
