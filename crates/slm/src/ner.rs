//! Named entity recognition: the "lightweight SLM-based tagging" of §III.A.
//!
//! The tagger combines three evidence sources, in priority order:
//!
//! 1. **Lexicon matches** — longest-match lookup of domain phrases
//!    (products, drugs, people…) injected at construction. This models the
//!    world knowledge a trained SLM carries in its weights.
//! 2. **Pattern rules** — quarters (`Q2 2024`), percentages, money, dates,
//!    alphanumeric identifiers, and a closed list of business/clinical
//!    metric words.
//! 3. **Capitalization heuristics** — consecutive capitalized words with
//!    title/suffix cues (`Dr. X` → person, `… Corp` → organization).
//!
//! Overlapping candidates are resolved by source priority, then span length.

use std::collections::{BTreeMap, HashMap};

use unisem_text::tokenize::{tokenize, Token, TokenKind};

/// Semantic class of a recognized entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityKind {
    /// A person (patient, customer, author…).
    Person,
    /// A company, lab, hospital, or other organization.
    Organization,
    /// A commercial product.
    Product,
    /// A pharmaceutical drug.
    Drug,
    /// A medical condition or symptom.
    Condition,
    /// A geographic location.
    Location,
    /// A calendar date or year.
    Date,
    /// A fiscal quarter, optionally with year ("Q2 2024").
    Quarter,
    /// A percentage value.
    Percent,
    /// A monetary amount.
    Money,
    /// A bare numeric quantity.
    Quantity,
    /// A measured business/clinical metric word ("sales", "efficacy"…).
    Metric,
    /// An alphanumeric identifier ("SKU-1023", "P88").
    Identifier,
    /// A category/segment label ("electronics", "cardiology"…).
    Category,
    /// Recognized as an entity but of unknown class.
    Other,
}

impl EntityKind {
    /// Stable lowercase label, used in graph node keys and reports.
    pub fn label(self) -> &'static str {
        match self {
            EntityKind::Person => "person",
            EntityKind::Organization => "organization",
            EntityKind::Product => "product",
            EntityKind::Drug => "drug",
            EntityKind::Condition => "condition",
            EntityKind::Location => "location",
            EntityKind::Date => "date",
            EntityKind::Quarter => "quarter",
            EntityKind::Percent => "percent",
            EntityKind::Money => "money",
            EntityKind::Quantity => "quantity",
            EntityKind::Metric => "metric",
            EntityKind::Identifier => "identifier",
            EntityKind::Category => "category",
            EntityKind::Other => "other",
        }
    }

    /// Parses a [`Self::label`] back into a kind (snapshot decoding).
    pub fn from_label(label: &str) -> Option<EntityKind> {
        match label {
            "person" => Some(EntityKind::Person),
            "organization" => Some(EntityKind::Organization),
            "product" => Some(EntityKind::Product),
            "drug" => Some(EntityKind::Drug),
            "condition" => Some(EntityKind::Condition),
            "location" => Some(EntityKind::Location),
            "date" => Some(EntityKind::Date),
            "quarter" => Some(EntityKind::Quarter),
            "percent" => Some(EntityKind::Percent),
            "money" => Some(EntityKind::Money),
            "quantity" => Some(EntityKind::Quantity),
            "metric" => Some(EntityKind::Metric),
            "identifier" => Some(EntityKind::Identifier),
            "category" => Some(EntityKind::Category),
            "other" => Some(EntityKind::Other),
            _ => None,
        }
    }

    /// True for kinds that denote *values* (numbers, dates) rather than
    /// referential entities; value kinds never become retrieval anchors.
    pub fn is_value(self) -> bool {
        matches!(
            self,
            EntityKind::Percent
                | EntityKind::Money
                | EntityKind::Quantity
                | EntityKind::Date
                | EntityKind::Quarter
        )
    }
}

/// A recognized entity mention with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityMention {
    /// Mention text exactly as in the source.
    pub text: String,
    /// Entity class.
    pub kind: EntityKind,
    /// Byte offset of the mention start.
    pub start: usize,
    /// Byte offset one past the mention end.
    pub end: usize,
    /// Tagger confidence in `[0, 1]`.
    pub confidence: f64,
}

impl EntityMention {
    /// Canonical form: lowercase, whitespace-collapsed.
    pub fn canonical(&self) -> String {
        canonical_phrase(&self.text)
    }
}

/// Canonicalizes an entity phrase: lowercase, collapse whitespace.
pub fn canonical_phrase(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ").to_lowercase()
}

/// Domain lexicon: phrase → entity kind.
///
/// Models the in-weights world knowledge of a trained SLM. Workload
/// generators register their entity inventories here.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    phrases: HashMap<String, EntityKind>,
    max_words: usize,
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one phrase (case-insensitive).
    pub fn add(&mut self, phrase: &str, kind: EntityKind) {
        let canon = canonical_phrase(phrase);
        if canon.is_empty() {
            return;
        }
        let words = canon.split(' ').count();
        self.max_words = self.max_words.max(words);
        self.phrases.insert(canon, kind);
    }

    /// Builder-style bulk insertion.
    pub fn with_entries<'a, I: IntoIterator<Item = (&'a str, EntityKind)>>(
        mut self,
        entries: I,
    ) -> Self {
        for (p, k) in entries {
            self.add(p, k);
        }
        self
    }

    /// Looks up a canonical phrase.
    pub fn get(&self, canonical: &str) -> Option<EntityKind> {
        self.phrases.get(canonical).copied()
    }

    /// Every `(canonical phrase, kind)` pair in sorted phrase order —
    /// the deterministic form the snapshot layer persists.
    pub fn entries(&self) -> Vec<(String, EntityKind)> {
        self.phrases
            .iter()
            .map(|(p, k)| (p.clone(), *k))
            .collect::<BTreeMap<_, _>>()
            .into_iter()
            .collect()
    }

    /// Number of phrases.
    pub fn len(&self) -> usize {
        self.phrases.len()
    }

    /// True when the lexicon has no phrases.
    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// Longest phrase length in words (0 when empty).
    pub fn max_words(&self) -> usize {
        self.max_words
    }
}

/// Metric words recognized by the pattern layer.
const METRIC_WORDS: &[&str] = &[
    "sales",
    "revenue",
    "profit",
    "price",
    "cost",
    "rating",
    "ratings",
    "satisfaction",
    "efficacy",
    "dosage",
    "dose",
    "units",
    "demand",
    "returns",
    "margin",
    "growth",
    "discount",
    "inventory",
    "stock",
    "amount",
    "spend",
    "spending",
];

/// Month names for date detection.
const MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Person-title cues preceding a capitalized word.
const PERSON_TITLES: &[&str] = &["dr", "mr", "mrs", "ms", "prof", "patient", "customer", "nurse"];

/// Organization suffix cues.
const ORG_SUFFIXES: &[&str] =
    &["inc", "corp", "ltd", "labs", "gmbh", "llc", "co", "group", "hospital", "clinic"];

/// The tagger. Cheap to clone if the lexicon is shared upstream.
#[derive(Debug, Clone, Default)]
pub struct NerTagger {
    lexicon: Lexicon,
}

/// Internal candidate with priority for overlap resolution.
struct Candidate {
    mention: EntityMention,
    priority: u8, // higher wins
}

impl NerTagger {
    /// Creates a tagger over the given lexicon.
    pub fn new(lexicon: Lexicon) -> Self {
        Self { lexicon }
    }

    /// The lexicon in use.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Tags all entity mentions in `text`.
    ///
    /// Mentions are returned sorted by start offset and never overlap.
    pub fn tag(&self, text: &str) -> Vec<EntityMention> {
        let tokens = tokenize(text);
        let mut candidates: Vec<Candidate> = Vec::new();
        self.lexicon_matches(text, &tokens, &mut candidates);
        self.pattern_matches(text, &tokens, &mut candidates);
        self.capitalization_matches(text, &tokens, &mut candidates);
        resolve_overlaps(candidates)
    }

    /// Longest-match lexicon lookup over token windows.
    fn lexicon_matches(&self, text: &str, tokens: &[Token], out: &mut Vec<Candidate>) {
        if self.lexicon.is_empty() {
            return;
        }
        let max_w = self.lexicon.max_words().max(1);
        let n = tokens.len();
        let mut i = 0;
        while i < n {
            if tokens[i].kind == TokenKind::Punct {
                i += 1;
                continue;
            }
            let mut best: Option<(usize, EntityKind)> = None; // (end_token_exclusive, kind)
            for w in 1..=max_w.min(n - i) {
                let span = &tokens[i..i + w];
                if span.iter().any(|t| t.kind == TokenKind::Punct) {
                    break;
                }
                let phrase = canonical_phrase(&text[span[0].start..span[w - 1].end]);
                if let Some(kind) = self.lexicon.get(&phrase) {
                    best = Some((i + w, kind));
                }
            }
            if let Some((end, kind)) = best {
                let start = tokens[i].start;
                let stop = tokens[end - 1].end;
                out.push(Candidate {
                    mention: EntityMention {
                        text: text[start..stop].to_string(),
                        kind,
                        start,
                        end: stop,
                        confidence: 0.95,
                    },
                    priority: 3,
                });
                i = end;
            } else {
                i += 1;
            }
        }
    }

    /// Rule patterns: quarters, percents, money, dates, ids, metrics.
    fn pattern_matches(&self, text: &str, tokens: &[Token], out: &mut Vec<Candidate>) {
        let n = tokens.len();
        let mut push = |start: usize, end: usize, kind: EntityKind, conf: f64| {
            out.push(Candidate {
                mention: EntityMention {
                    text: text[start..end].to_string(),
                    kind,
                    start,
                    end,
                    confidence: conf,
                },
                priority: 2,
            });
        };
        for i in 0..n {
            let t = &tokens[i];
            let lower = t.lower();
            match t.kind {
                TokenKind::Word => {
                    // Quarter: Q1..Q4, optionally followed by a year.
                    if lower.len() == 2
                        && lower.starts_with('q')
                        && matches!(&lower[1..], "1" | "2" | "3" | "4")
                    {
                        let mut end = t.end;
                        if i + 1 < n && is_year(&tokens[i + 1]) {
                            end = tokens[i + 1].end;
                        }
                        push(t.start, end, EntityKind::Quarter, 0.9);
                        continue;
                    }
                    // Month-name dates: "March 5, 2024" / "March 2024" / "March".
                    if MONTHS.contains(&lower.as_str()) {
                        let mut end = t.end;
                        let mut j = i + 1;
                        if j < n && tokens[j].kind == TokenKind::Number {
                            end = tokens[j].end;
                            j += 1;
                            if j + 1 < n
                                && tokens[j].text == ","
                                && tokens[j + 1].kind == TokenKind::Number
                            {
                                end = tokens[j + 1].end;
                            }
                        }
                        push(t.start, end, EntityKind::Date, 0.85);
                        continue;
                    }
                    // Metric words.
                    if METRIC_WORDS.contains(&lower.as_str()) {
                        push(t.start, t.end, EntityKind::Metric, 0.8);
                        continue;
                    }
                    // Alphanumeric identifier: mixed letters+digits (Q2
                    // handled above), e.g. "SKU1023", "P-88".
                    let has_digit = t.text.chars().any(|c| c.is_ascii_digit());
                    let has_alpha = t.text.chars().any(|c| c.is_alphabetic());
                    if has_digit && has_alpha && t.text.len() >= 3 {
                        push(t.start, t.end, EntityKind::Identifier, 0.75);
                    }
                }
                TokenKind::Number => {
                    // Percent: number followed by '%' or "percent".
                    if i + 1 < n
                        && (tokens[i + 1].text == "%"
                            || tokens[i + 1].lower() == "percent"
                            || tokens[i + 1].lower() == "pct")
                    {
                        push(t.start, tokens[i + 1].end, EntityKind::Percent, 0.95);
                        continue;
                    }
                    // Money: '$' before, or currency word after.
                    if i > 0 && tokens[i - 1].text == "$" {
                        push(tokens[i - 1].start, t.end, EntityKind::Money, 0.95);
                        continue;
                    }
                    if i + 1 < n
                        && matches!(tokens[i + 1].lower().as_str(), "dollars" | "usd" | "eur")
                    {
                        push(t.start, tokens[i + 1].end, EntityKind::Money, 0.9);
                        continue;
                    }
                    // ISO-ish date: NNNN-NN-NN tokenizes as number,punct,...
                    if is_year(t) {
                        if i + 4 < n
                            && tokens[i + 1].text == "-"
                            && tokens[i + 2].kind == TokenKind::Number
                            && tokens[i + 3].text == "-"
                            && tokens[i + 4].kind == TokenKind::Number
                        {
                            push(t.start, tokens[i + 4].end, EntityKind::Date, 0.95);
                        } else {
                            push(t.start, t.end, EntityKind::Date, 0.6);
                        }
                        continue;
                    }
                    // Bare quantity.
                    push(t.start, t.end, EntityKind::Quantity, 0.5);
                }
                TokenKind::Punct => {}
            }
        }
    }

    /// Capitalized-run heuristics with title/suffix cues.
    fn capitalization_matches(&self, text: &str, tokens: &[Token], out: &mut Vec<Candidate>) {
        let n = tokens.len();
        let mut i = 0;
        while i < n {
            let t = &tokens[i];
            let sentence_initial =
                i == 0 || matches!(tokens[i - 1].text.as_str(), "." | "!" | "?" | ":" | ";");
            if t.kind == TokenKind::Word && t.is_capitalized() && !t.is_acronym() {
                // Extend over consecutive capitalized words.
                let mut j = i + 1;
                while j < n && tokens[j].kind == TokenKind::Word && tokens[j].is_capitalized() {
                    j += 1;
                }
                let run_len = j - i;
                // Skip a single sentence-initial capitalized word with no
                // cues — almost always just the sentence start.
                // Title cue may be separated by a period token ("Dr . Smith"
                // after tokenization).
                let prev_word_idx = if i >= 2 && tokens[i - 1].text == "." {
                    Some(i - 2)
                } else if i >= 1 {
                    Some(i - 1)
                } else {
                    None
                };
                let prev_lower = prev_word_idx.map(|p| tokens[p].lower()).unwrap_or_default();
                let title_cue = PERSON_TITLES.contains(&prev_lower.as_str());
                let last_lower = tokens[j - 1].lower();
                let org_cue = ORG_SUFFIXES.contains(&last_lower.as_str());
                if run_len >= 2 || title_cue || org_cue || (!sentence_initial && run_len >= 1) {
                    let kind = if title_cue {
                        EntityKind::Person
                    } else if org_cue {
                        EntityKind::Organization
                    } else {
                        EntityKind::Other
                    };
                    let start = t.start;
                    let end = tokens[j - 1].end;
                    out.push(Candidate {
                        mention: EntityMention {
                            text: text[start..end].to_string(),
                            kind,
                            start,
                            end,
                            confidence: if title_cue || org_cue { 0.8 } else { 0.55 },
                        },
                        priority: 1,
                    });
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }
}

/// A 4-digit number in a plausible year range.
fn is_year(t: &Token) -> bool {
    t.kind == TokenKind::Number
        && t.text.len() == 4
        && t.text.parse::<u32>().is_ok_and(|y| (1900..=2099).contains(&y))
}

/// Resolves overlapping candidates: higher priority wins, then longer span,
/// then earlier start. Output is sorted and non-overlapping.
fn resolve_overlaps(mut candidates: Vec<Candidate>) -> Vec<EntityMention> {
    candidates.sort_by(|a, b| {
        b.priority
            .cmp(&a.priority)
            .then((b.mention.end - b.mention.start).cmp(&(a.mention.end - a.mention.start)))
            .then(a.mention.start.cmp(&b.mention.start))
    });
    let mut chosen: Vec<EntityMention> = Vec::new();
    for c in candidates {
        let overlaps = chosen.iter().any(|m| c.mention.start < m.end && m.start < c.mention.end);
        if !overlaps {
            chosen.push(c.mention);
        }
    }
    chosen.sort_by_key(|m| m.start);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagger() -> NerTagger {
        let lex = Lexicon::new().with_entries([
            ("Drug A", EntityKind::Drug),
            ("Drug B", EntityKind::Drug),
            ("Product Alpha", EntityKind::Product),
            ("Acme Corp", EntityKind::Organization),
            ("headache", EntityKind::Condition),
            ("migraine", EntityKind::Condition),
        ]);
        NerTagger::new(lex)
    }

    #[test]
    fn lexicon_phrase_matched() {
        let t = tagger();
        let m = t.tag("Patients taking Drug A reported fewer headaches.");
        assert!(m.iter().any(|e| e.kind == EntityKind::Drug && e.text == "Drug A"));
    }

    #[test]
    fn lexicon_match_is_case_insensitive() {
        let t = tagger();
        let m = t.tag("patients on drug a improved");
        assert!(m.iter().any(|e| e.kind == EntityKind::Drug));
    }

    #[test]
    fn longest_lexicon_match_wins() {
        let lex = Lexicon::new()
            .with_entries([("Alpha", EntityKind::Product), ("Product Alpha", EntityKind::Product)]);
        let t = NerTagger::new(lex);
        let m = t.tag("We sell Product Alpha worldwide.");
        let prod: Vec<&EntityMention> =
            m.iter().filter(|e| e.kind == EntityKind::Product).collect();
        assert_eq!(prod.len(), 1);
        assert_eq!(prod[0].text, "Product Alpha");
    }

    #[test]
    fn quarter_with_year() {
        let t = tagger();
        let m = t.tag("Sales rose in Q2 2024 strongly.");
        let q = m.iter().find(|e| e.kind == EntityKind::Quarter).unwrap();
        assert_eq!(q.text, "Q2 2024");
    }

    #[test]
    fn quarter_without_year() {
        let t = tagger();
        let m = t.tag("Compare Q3 results");
        let q = m.iter().find(|e| e.kind == EntityKind::Quarter).unwrap();
        assert_eq!(q.text, "Q3");
    }

    #[test]
    fn percent_and_money() {
        let t = tagger();
        let m = t.tag("Revenue grew 20% to $1,500.75 overall.");
        assert!(m.iter().any(|e| e.kind == EntityKind::Percent && e.text == "20%"));
        assert!(m.iter().any(|e| e.kind == EntityKind::Money && e.text == "$1,500.75"));
    }

    #[test]
    fn month_date_forms() {
        let t = tagger();
        let m = t.tag("Shipped on March 5, 2024 as planned.");
        let d = m.iter().find(|e| e.kind == EntityKind::Date).unwrap();
        assert_eq!(d.text, "March 5, 2024");
    }

    #[test]
    fn iso_date() {
        let t = tagger();
        let m = t.tag("Recorded 2024-03-05 in the log.");
        let d = m.iter().find(|e| e.kind == EntityKind::Date).unwrap();
        assert_eq!(d.text, "2024-03-05");
    }

    #[test]
    fn metric_words() {
        let t = tagger();
        let m = t.tag("total sales and average rating");
        assert!(m.iter().filter(|e| e.kind == EntityKind::Metric).count() >= 2);
    }

    #[test]
    fn identifiers() {
        let t = tagger();
        let m = t.tag("Order SKU1023 arrived.");
        assert!(m.iter().any(|e| e.kind == EntityKind::Identifier && e.text == "SKU1023"));
    }

    #[test]
    fn person_by_title() {
        let t = tagger();
        let m = t.tag("We consulted Dr. Smith yesterday.");
        assert!(m.iter().any(|e| e.kind == EntityKind::Person && e.text.contains("Smith")));
    }

    #[test]
    fn org_by_suffix() {
        let t = tagger();
        let m = t.tag("The device from Initech Labs failed.");
        assert!(m.iter().any(|e| e.kind == EntityKind::Organization));
    }

    #[test]
    fn sentence_initial_word_alone_not_entity() {
        let t = tagger();
        let m = t.tag("Therefore the plan works.");
        assert!(!m.iter().any(|e| e.text == "Therefore"));
    }

    #[test]
    fn mentions_sorted_nonoverlapping() {
        let t = tagger();
        let m = t.tag("Drug A beat Drug B by 12% in Q1 2023 at Acme Corp.");
        for w in m.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert!(m.len() >= 4);
    }

    #[test]
    fn canonical_collapses_whitespace_and_case() {
        let m = EntityMention {
            text: "Product   Alpha".to_string(),
            kind: EntityKind::Product,
            start: 0,
            end: 0,
            confidence: 1.0,
        };
        assert_eq!(m.canonical(), "product alpha");
    }

    #[test]
    fn value_kinds_flagged() {
        assert!(EntityKind::Percent.is_value());
        assert!(EntityKind::Quarter.is_value());
        assert!(!EntityKind::Drug.is_value());
    }

    #[test]
    fn empty_text() {
        assert!(tagger().tag("").is_empty());
    }

    #[test]
    fn spans_slice_source() {
        let t = tagger();
        let text = "Acme Corp sold Product Alpha for $5 in Q4.";
        for e in t.tag(text) {
            assert_eq!(&text[e.start..e.end], e.text);
        }
    }
}
