//! Evidence-constrained answer generation with temperature sampling.
//!
//! This is the code path semantic entropy (§III.D) measures. The generator
//! models the *decision behaviour* of an SLM answering from retrieved
//! evidence:
//!
//! - Each candidate answer carries a **support** weight (how strongly the
//!   retrieved context backs it). Sampling draws from a softmax over
//!   supports at the configured temperature.
//! - When total support is weak, the generator mixes in **hallucination
//!   candidates** — plausible-but-ungrounded answers derived
//!   deterministically from the query — reproducing the failure mode the
//!   paper cites ("LLM-based QA systems often hallucinate plausible but
//!   ungrounded comparisons", §I).
//! - Sampled answers are surfaced through **paraphrase templates**, so
//!   semantically identical samples are *lexically* diverse. A correct
//!   entropy implementation must cluster these together; a naive
//!   exact-match one will not — which is precisely the distinction the
//!   paper's §III.D draws.
//!
//! All randomness is seeded: `(generator seed, query, config seed)` fully
//! determine the output.

use detkit::Rng;

use crate::embedding::fnv1a;

/// A candidate answer with its evidence support weight.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportedAnswer {
    /// The answer text (the semantic "core" — templates wrap around it).
    pub text: String,
    /// Non-negative evidence weight; higher = better grounded.
    pub support: f64,
}

impl SupportedAnswer {
    /// Convenience constructor.
    pub fn new(text: impl Into<String>, support: f64) -> Self {
        Self { text: text.into(), support }
    }
}

/// Sampling configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of samples to draw.
    pub n_samples: usize,
    /// Softmax temperature; 0 is greedy (argmax).
    pub temperature: f64,
    /// Extra seed mixed into the RNG so callers can draw fresh sample sets.
    pub seed: u64,
    /// Whether to wrap samples in paraphrase templates.
    pub paraphrase: bool,
    /// Support mass below which hallucination candidates are mixed in.
    pub hallucination_threshold: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            n_samples: 1,
            temperature: 0.7,
            seed: 0,
            paraphrase: true,
            hallucination_threshold: 0.25,
        }
    }
}

/// One sampled generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Generation {
    /// Surface text (template-wrapped core answer).
    pub text: String,
    /// The unwrapped core answer.
    pub core: String,
    /// Natural log-probability of the chosen candidate under the sampling
    /// distribution (the predictive-entropy baseline consumes this).
    pub log_prob: f64,
    /// Index of the evidence candidate, or `None` for a hallucination.
    pub source_index: Option<usize>,
}

/// Paraphrase templates; `{}` is replaced by the core answer.
const TEMPLATES: &[&str] = &[
    "{}",
    "The answer is {}.",
    "Based on the data, {}.",
    "{} according to the records.",
    "It appears that {}.",
    "From the available evidence: {}.",
];

/// Hallucination answer fragments, instantiated per query.
const HALLUCINATION_FORMS: &[&str] = &[
    "it cannot be determined",
    "the opposite holds",
    "results are inconclusive",
    "no change was observed",
];

/// The answer generator.
#[derive(Debug, Clone)]
pub struct Generator {
    base_seed: u64,
}

impl Generator {
    /// Creates a generator with a base seed.
    pub fn new(base_seed: u64) -> Self {
        Self { base_seed }
    }

    /// Greedy (argmax-support) answer; `None` when no evidence is given.
    pub fn answer_greedy(&self, evidence: &[SupportedAnswer]) -> Option<SupportedAnswer> {
        evidence
            .iter()
            .max_by(|a, b| {
                a.support
                    .partial_cmp(&b.support)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.text.cmp(&a.text))
            })
            .cloned()
    }

    /// Draws `config.n_samples` answers for `query` from the evidence
    /// distribution.
    ///
    /// Deterministic in `(base_seed, query, config.seed)`.
    pub fn sample(
        &self,
        query: &str,
        evidence: &[SupportedAnswer],
        config: &GenConfig,
    ) -> Vec<Generation> {
        let mut candidates: Vec<(String, f64, Option<usize>)> = evidence
            .iter()
            .enumerate()
            .map(|(i, e)| (e.text.clone(), e.support.max(0.0), Some(i)))
            .collect();

        let total_support: f64 = candidates.iter().map(|c| c.1).sum();
        // Weak grounding → mix in query-derived hallucinations. Their mass
        // grows as real support shrinks, so entropy tracks evidence quality.
        if total_support < config.hallucination_threshold {
            let halluc_mass = (config.hallucination_threshold - total_support).max(0.05);
            let qh = fnv1a(query.as_bytes());
            for (k, form) in HALLUCINATION_FORMS.iter().enumerate() {
                let jitter = ((qh.rotate_left(k as u32 * 7) % 100) as f64) / 400.0;
                candidates.push((
                    (*form).to_string(),
                    halluc_mass / HALLUCINATION_FORMS.len() as f64 + jitter * 0.01,
                    None,
                ));
            }
        }
        if candidates.is_empty() {
            return Vec::new();
        }

        let probs =
            softmax(&candidates.iter().map(|c| c.1).collect::<Vec<_>>(), config.temperature);
        let seed = self.base_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ fnv1a(query.as_bytes())
            ^ config.seed.wrapping_mul(0xff51_afd7_ed55_8ccd);
        // Fork one decorrelated RNG substream per sample *before* dispatch
        // (parkit determinism contract, DESIGN.md §6): each sample's draws
        // are a pure function of its index, never of scheduling, so the
        // fan-out below is bit-identical at any thread count.
        let mut rng = Rng::new(seed);
        let streams: Vec<Rng> = (0..config.n_samples).map(|_| rng.fork()).collect();

        parkit::global().par_map_range(config.n_samples, |s| {
            let idx = if config.temperature <= 0.0 {
                argmax(&probs)
            } else {
                let mut stream = streams[s].clone();
                sample_categorical(&mut stream, &probs)
            };
            let (core, _, source) = &candidates[idx];
            let text = if config.paraphrase {
                let ti = (seed.rotate_left(s as u32) as usize).wrapping_add(s) % TEMPLATES.len();
                apply_template(TEMPLATES[ti], core)
            } else {
                core.clone()
            };
            Generation {
                text,
                core: core.clone(),
                log_prob: probs[idx].max(1e-12).ln(),
                source_index: *source,
            }
        })
    }
}

fn apply_template(template: &str, core: &str) -> String {
    template.replace("{}", core)
}

/// Temperature softmax; temperature 0 returns a one-hot argmax distribution.
fn softmax(weights: &[f64], temperature: f64) -> Vec<f64> {
    if weights.is_empty() {
        return Vec::new();
    }
    if temperature <= 0.0 {
        let mut p = vec![0.0; weights.len()];
        p[argmax_slice(weights)] = 1.0;
        return p;
    }
    let max = weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = weights.iter().map(|w| ((w - max) / temperature).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(probs: &[f64]) -> usize {
    argmax_slice(probs)
}

fn argmax_slice(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(i, _)| i)
}

fn sample_categorical(rng: &mut Rng, probs: &[f64]) -> usize {
    let r = rng.next_f64();
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strong_evidence() -> Vec<SupportedAnswer> {
        vec![
            SupportedAnswer::new("sales rose 20%", 5.0),
            SupportedAnswer::new("sales fell 3%", 0.2),
        ]
    }

    #[test]
    fn greedy_picks_max_support() {
        let g = Generator::new(1);
        let a = g.answer_greedy(&strong_evidence()).unwrap();
        assert_eq!(a.text, "sales rose 20%");
        assert!(g.answer_greedy(&[]).is_none());
    }

    #[test]
    fn deterministic_sampling() {
        let g = Generator::new(42);
        let cfg = GenConfig { n_samples: 5, ..GenConfig::default() };
        let a = g.sample("q", &strong_evidence(), &cfg);
        let b = g.sample("q", &strong_evidence(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig { n_samples: 8, temperature: 2.0, ..GenConfig::default() };
        let a = Generator::new(1).sample("q", &strong_evidence(), &cfg);
        let b = Generator::new(2).sample("q", &strong_evidence(), &cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_temperature_is_greedy() {
        let g = Generator::new(7);
        let cfg = GenConfig {
            n_samples: 10,
            temperature: 0.0,
            paraphrase: false,
            ..GenConfig::default()
        };
        let gens = g.sample("q", &strong_evidence(), &cfg);
        assert!(gens.iter().all(|x| x.core == "sales rose 20%"));
    }

    #[test]
    fn strong_evidence_concentrates_samples() {
        let g = Generator::new(3);
        let cfg = GenConfig {
            n_samples: 20,
            temperature: 0.5,
            paraphrase: false,
            ..GenConfig::default()
        };
        let gens = g.sample("q", &strong_evidence(), &cfg);
        let majority = gens.iter().filter(|x| x.core == "sales rose 20%").count();
        assert!(majority >= 16, "got {majority}/20");
    }

    #[test]
    fn no_evidence_hallucinates_diversely() {
        let g = Generator::new(3);
        let cfg = GenConfig {
            n_samples: 20,
            temperature: 1.0,
            paraphrase: false,
            ..GenConfig::default()
        };
        let gens = g.sample("unanswerable question", &[], &cfg);
        assert_eq!(gens.len(), 20);
        assert!(gens.iter().all(|x| x.source_index.is_none()));
        let distinct: std::collections::HashSet<&str> =
            gens.iter().map(|x| x.core.as_str()).collect();
        assert!(distinct.len() >= 2, "hallucinations should diverge");
    }

    #[test]
    fn weak_evidence_mixes_hallucinations() {
        let g = Generator::new(11);
        let weak = vec![SupportedAnswer::new("maybe 5 units", 0.05)];
        let cfg = GenConfig {
            n_samples: 30,
            temperature: 1.5,
            paraphrase: false,
            ..GenConfig::default()
        };
        let gens = g.sample("q", &weak, &cfg);
        assert!(gens.iter().any(|x| x.source_index.is_none()));
        assert!(gens.iter().any(|x| x.source_index.is_some()));
    }

    #[test]
    fn paraphrase_preserves_core() {
        let g = Generator::new(5);
        let cfg =
            GenConfig { n_samples: 12, temperature: 0.0, paraphrase: true, ..GenConfig::default() };
        let gens = g.sample("q", &strong_evidence(), &cfg);
        for x in &gens {
            assert!(x.text.contains(&x.core), "{} ⊄ {}", x.core, x.text);
        }
        // Templates vary the surface form across samples.
        let surfaces: std::collections::HashSet<&str> =
            gens.iter().map(|x| x.text.as_str()).collect();
        assert!(surfaces.len() > 1);
    }

    #[test]
    fn log_probs_are_valid() {
        let g = Generator::new(5);
        let cfg = GenConfig { n_samples: 6, ..GenConfig::default() };
        for x in g.sample("q", &strong_evidence(), &cfg) {
            assert!(x.log_prob <= 0.0);
            assert!(x.log_prob.is_finite());
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0], 0.7);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_temperature_flattens() {
        let hot = softmax(&[1.0, 3.0], 5.0);
        let cold = softmax(&[1.0, 3.0], 0.1);
        assert!(hot[0] > cold[0]);
    }

    #[test]
    fn empty_everything() {
        let g = Generator::new(0);
        let cfg = GenConfig { hallucination_threshold: 0.0, ..GenConfig::default() };
        assert!(g.sample("q", &[], &cfg).is_empty());
    }
}
