//! Property-based tests: SLM substrate invariants.

use proptest::prelude::*;
use unisem_slm::{
    count_tokens, subword_tokenize, EntityKind, GenConfig, Generator, Lexicon, NerTagger,
    SupportedAnswer,
};

proptest! {
    /// Subword pieces concatenate back to the word.
    #[test]
    fn subword_roundtrip(w in "[a-zA-Z]{1,30}") {
        prop_assert_eq!(subword_tokenize(&w).concat(), w);
    }

    /// Token counting is monotone under concatenation.
    #[test]
    fn token_count_superadditive(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let joined = format!("{a} {b}");
        prop_assert!(count_tokens(&joined) >= count_tokens(&a));
        prop_assert!(count_tokens(&joined) >= count_tokens(&b));
    }

    /// NER mentions are sorted, non-overlapping, and slice the source.
    #[test]
    fn ner_mentions_well_formed(text in "[a-zA-Z0-9 .,%$]{0,120}") {
        let tagger = NerTagger::new(Lexicon::new().with_entries([
            ("Drug A", EntityKind::Drug),
            ("Product Alpha", EntityKind::Product),
        ]));
        let mentions = tagger.tag(&text);
        for m in &mentions {
            prop_assert_eq!(&text[m.start..m.end], m.text.as_str());
            prop_assert!((0.0..=1.0).contains(&m.confidence));
        }
        for w in mentions.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Generation is deterministic in (seed, query, config) and sample
    /// count is honored.
    #[test]
    fn generation_deterministic(seed in any::<u64>(), n in 1usize..12, temp in 0.0f64..3.0) {
        let evidence = vec![
            SupportedAnswer::new("alpha outcome", 2.0),
            SupportedAnswer::new("beta outcome", 1.0),
        ];
        let cfg = GenConfig { n_samples: n, temperature: temp, ..GenConfig::default() };
        let a = Generator::new(seed).sample("q", &evidence, &cfg);
        let b = Generator::new(seed).sample("q", &evidence, &cfg);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        for g in &a {
            prop_assert!(g.log_prob <= 0.0);
            prop_assert!(g.text.contains(&g.core));
        }
    }

    /// Samples always come from the candidate set (evidence or the fixed
    /// hallucination pool) — the generator never fabricates novel strings.
    #[test]
    fn samples_from_candidates(seed in any::<u64>(), support in 0.0f64..2.0) {
        let evidence = vec![SupportedAnswer::new("grounded answer", support)];
        let cfg = GenConfig { n_samples: 8, paraphrase: false, ..GenConfig::default() };
        let gens = Generator::new(seed).sample("q", &evidence, &cfg);
        for g in gens {
            let from_evidence = g.core == "grounded answer";
            let from_pool = g.source_index.is_none();
            prop_assert!(from_evidence || from_pool);
        }
    }
}
