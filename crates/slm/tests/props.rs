//! Property-based tests: SLM substrate invariants (detkit harness).

use detkit::prop::{f64s, string_of, u64s, usizes, zip, zip3};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use unisem_slm::{
    count_tokens, subword_tokenize, EntityKind, GenConfig, Generator, Lexicon, NerTagger,
    SupportedAnswer,
};

const ALPHA: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

// Subword pieces concatenate back to the word.
prop_check!(subword_roundtrip, string_of(ALPHA, 1, 30), |w| {
    prop_assert_eq!(subword_tokenize(w).concat(), *w);
    Ok(())
});

// Token counting is monotone under concatenation.
prop_check!(
    token_count_superadditive,
    zip(
        &string_of("abcdefghijklm nopqrstuvwxyz ", 0, 40),
        &string_of("abcdefghijklm nopqrstuvwxyz ", 0, 40),
    ),
    |t| {
        let (a, b) = t;
        let joined = format!("{a} {b}");
        prop_assert!(count_tokens(&joined) >= count_tokens(a));
        prop_assert!(count_tokens(&joined) >= count_tokens(b));
        Ok(())
    }
);

// NER mentions are sorted, non-overlapping, and slice the source.
prop_check!(
    ner_mentions_well_formed,
    string_of("abcdefgh DrugA ProductAlpha 0123456789 .,%$", 0, 120),
    |text| {
        let tagger =
            NerTagger::new(Lexicon::new().with_entries([
                ("Drug A", EntityKind::Drug),
                ("Product Alpha", EntityKind::Product),
            ]));
        let mentions = tagger.tag(text);
        for m in &mentions {
            prop_assert_eq!(&text[m.start..m.end], m.text.as_str());
            prop_assert!((0.0..=1.0).contains(&m.confidence));
        }
        for w in mentions.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        Ok(())
    }
);

// Generation is deterministic in (seed, query, config) and sample count
// is honored.
prop_check!(
    generation_deterministic,
    zip3(&u64s(0, u64::MAX), &usizes(1, 11), &f64s(0.0, 3.0)),
    |t| {
        let &(seed, n, temp) = t;
        let evidence = vec![
            SupportedAnswer::new("alpha outcome", 2.0),
            SupportedAnswer::new("beta outcome", 1.0),
        ];
        let cfg = GenConfig { n_samples: n, temperature: temp, ..GenConfig::default() };
        let a = Generator::new(seed).sample("q", &evidence, &cfg);
        let b = Generator::new(seed).sample("q", &evidence, &cfg);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        for g in &a {
            prop_assert!(g.log_prob <= 0.0);
            prop_assert!(g.text.contains(&g.core));
        }
        Ok(())
    }
);

// Samples always come from the candidate set (evidence or the fixed
// hallucination pool) — the generator never fabricates novel strings.
prop_check!(samples_from_candidates, zip(&u64s(0, u64::MAX), &f64s(0.0, 2.0)), |t| {
    let &(seed, support) = t;
    let evidence = vec![SupportedAnswer::new("grounded answer", support)];
    let cfg = GenConfig { n_samples: 8, paraphrase: false, ..GenConfig::default() };
    let gens = Generator::new(seed).sample("q", &evidence, &cfg);
    for g in gens {
        let from_evidence = g.core == "grounded answer";
        let from_pool = g.source_index.is_none();
        prop_assert!(from_evidence || from_pool);
    }
    Ok(())
});
