//! Healthcare EHR question answering: the paper's §I motivating scenario —
//! "Compare the efficacy of Drug A (from clinical trial tables) with
//! patient-reported side effects (from unstructured forums)".
//!
//! Run with:
//! ```sh
//! cargo run -p unisem-core --example healthcare_qa
//! ```

use unisem_core::{EngineBuilder, EngineConfig};
use unisem_workloads::{HealthcareConfig, HealthcareWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = HealthcareWorkload::generate(HealthcareConfig {
        drugs: 6,
        patients: 12,
        trials_per_drug: 3,
        qa_per_category: 2,
        seed: 0xBEEF,
    });

    let mut builder = EngineBuilder::with_config(workload.lexicon.clone(), EngineConfig::default());
    for name in workload.db.table_names() {
        builder.add_table(name, workload.db.table(name)?.clone())?;
    }
    for coll in workload.semi.collections() {
        for doc in workload.semi.docs(coll) {
            builder.add_json(coll, doc.clone());
        }
    }
    for d in &workload.documents {
        builder.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    let (engine, _report) = builder.build();

    let drug_a = unisem_workloads::names::drug(0);
    let drug_b = unisem_workloads::names::drug(1);
    let patient = unisem_workloads::names::patient_id(2);

    for question in [
        // Structured: trials table.
        format!("What is the average efficacy of {drug_a}?"),
        // The paper's §I flagship: structured efficacy + unstructured forums.
        format!("Compare the efficacy of {drug_a} and {drug_b}: which drug is more effective?"),
        format!("What side effect did forum users report for {drug_a}?"),
        // Clinical-note lookup: only in unstructured notes.
        format!("Which drug did Patient {patient} receive?"),
        // Threshold selection with HAVING semantics.
        "Which drugs had an average efficacy above 70?".to_string(),
    ] {
        let answer = engine.answer(&question);
        println!("Q: {question}");
        println!("A: {answer}");
        for p in answer.provenance.iter().take(2) {
            println!("   evidence: {p:?}");
        }
        println!();
    }

    // Show the cross-modal path in the graph: a trial record and a forum
    // post about the same drug are two hops apart.
    let graph = engine.graph();
    if let Some(drug_node) = graph.entity_by_name(&drug_a.to_lowercase()) {
        println!(
            "graph: '{}' node has {} neighbors spanning chunks and records",
            drug_a.to_lowercase(),
            graph.degree(drug_node)
        );
    }
    Ok(())
}
