//! Observability tour (DESIGN.md §9, §14): per-query explain traces with
//! resource meters, span flamegraphs, the closed metric registry with its
//! latency/size histograms, and trace-sink emission.
//!
//! Run with:
//! ```sh
//! cargo run -p unisem-core --example observability
//! # ...or stream every query's trace block as JSON-lines to stderr:
//! UNISEM_TRACE=stderr cargo run -p unisem-core --example observability
//! ```

use tracekit::FlameGraph;
use unisem_core::{EngineBuilder, EngineConfig, EntityKind, Lexicon};
use unisem_relstore::{DataType, Schema, Table, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lexicon = Lexicon::new().with_entries([
        ("Aero Widget", EntityKind::Product),
        ("Nova Speaker", EntityKind::Product),
        ("Acme Corp", EntityKind::Organization),
    ]);
    // Opt in to per-query explain traces: every Answer now carries
    // `answer.trace` (deterministic — byte-identical across runs and
    // thread counts). With `trace: false` (the default) the hot path
    // performs zero trace allocations.
    let config = EngineConfig { trace: true, ..EngineConfig::default() };
    let mut builder = EngineBuilder::with_config(lexicon, config);

    let sales = Table::from_rows(
        Schema::of(&[
            ("product", DataType::Str),
            ("quarter", DataType::Str),
            ("amount", DataType::Float),
        ]),
        vec![
            vec![Value::str("Aero Widget"), Value::str("Q1 2024"), Value::Float(1200.0)],
            vec![Value::str("Aero Widget"), Value::str("Q2 2024"), Value::Float(1500.0)],
            vec![Value::str("Nova Speaker"), Value::str("Q1 2024"), Value::Float(900.0)],
        ],
    )?;
    builder.add_table("sales", sales)?;
    builder.add_document(
        "press release",
        "Acme Corp launched the Aero Widget in January. The Aero Widget is \
         manufactured by Acme Corp at its Hamburg plant.",
        "news",
    );

    let (engine, _report) = builder.build();

    let questions = [
        "What was the total sales amount of Aero Widget across all quarters?",
        "Which manufacturer makes the Aero Widget?",
        "What was the total sales of the Phantom Gizmo in Q2 2024?",
    ];
    // Running totals of the per-query meters, cross-checked against the
    // registry at the end: the trace-level and registry-level views of
    // resource consumption must agree exactly.
    let mut total_nodes_popped = 0u64;
    let mut total_slm_samples = 0u64;
    let mut flame = FlameGraph::new();

    for question in questions {
        let answer = engine.answer(question);
        println!("Q: {question}");
        println!("A: {answer}");
        // The explain trace: ladder rungs attempted (with outcomes), the
        // synthesized plan, traversal stats, the entropy verdict, and the
        // per-query resource meter.
        let trace = answer.trace.as_ref().expect("EngineConfig::trace attaches one");
        println!("  route taken: {}", trace.route);
        for rung in &trace.rungs {
            println!("  rung {:<12} {:<9} {}", rung.rung, rung.outcome.label(), rung.detail);
        }
        if let Some(plan) = &trace.plan {
            println!("  plan: {plan}");
        }
        if let Some(t) = &trace.traversal {
            println!(
                "  traversal: {} anchors, {} nodes touched, {} chunks scored",
                t.anchors, t.nodes_touched, t.chunks_scored
            );
        }
        if let Some(e) = &trace.entropy {
            println!(
                "  entropy: {} samples -> {} clusters, confidence {:.2}, abstained={}",
                e.n_samples, e.n_clusters, e.confidence, e.abstained
            );
        }
        // The resource meter: work performed, as pure functions of query
        // + corpus (deterministic at every thread count).
        let meter = trace.meter.as_ref().expect("traced answers carry a meter");
        let fields = meter
            .fields()
            .iter()
            .map(|(name, v)| format!("{name}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("  meter: {fields}");
        total_nodes_popped += meter.nodes_popped;
        total_slm_samples += meter.slm_samples;
        flame.add_trace(trace);
        println!();
    }

    // The span flamegraph: folded stacks (`parent;child weight`) folded
    // from the three traces — deterministic, so the same workload always
    // folds to the same bytes.
    println!("flamegraph (folded stacks, all queries):");
    for line in flame.to_folded().lines() {
        println!("  {line}");
    }

    // The closed metric registry: every counter/gauge/histogram has a
    // compile-time name; the snapshot is deterministic for a given
    // workload.
    let metrics = engine.metrics_report();
    println!("\nmetrics snapshot (deterministic):");
    for name in ["query.answered", "query.abstained", "traverse.queries", "relstore.plans_executed"]
    {
        println!("  {name} = {}", metrics.get(name).unwrap_or(0));
    }
    println!(
        "  meter.slm_calls histogram: {} observations, p50<= {}",
        metrics.hist_total("meter.slm_calls").unwrap_or(0),
        metrics.hist_quantile("meter.slm_calls", 0.5).unwrap_or(0),
    );

    // Cross-check: the per-query meters and the registry are two views of
    // the same work and must agree exactly.
    assert_eq!(metrics.hist_total("meter.slm_calls"), Some(questions.len() as u64));
    assert_eq!(metrics.get("traverse.nodes_popped"), Some(total_nodes_popped));
    assert_eq!(metrics.get("entropy.samples"), Some(total_slm_samples));

    // Wall-clock stage timings live in a *separate* report, so determinism
    // checks never see them.
    let timings = engine.timing_report();
    println!("\nstage timings (wall-clock, non-deterministic):\n{timings}");
    Ok(())
}
