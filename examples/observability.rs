//! Observability tour (DESIGN.md §9): per-query explain traces, the closed
//! metric registry, and trace-sink emission.
//!
//! Run with:
//! ```sh
//! cargo run -p unisem-core --example observability
//! # ...or stream every query's trace block as JSON-lines to stderr:
//! UNISEM_TRACE=stderr cargo run -p unisem-core --example observability
//! ```

use unisem_core::{EngineBuilder, EngineConfig, EntityKind, Lexicon};
use unisem_relstore::{DataType, Schema, Table, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lexicon = Lexicon::new().with_entries([
        ("Aero Widget", EntityKind::Product),
        ("Nova Speaker", EntityKind::Product),
        ("Acme Corp", EntityKind::Organization),
    ]);
    // Opt in to per-query explain traces: every Answer now carries
    // `answer.trace` (deterministic — byte-identical across runs and
    // thread counts). With `trace: false` (the default) the hot path
    // performs zero trace allocations.
    let config = EngineConfig { trace: true, ..EngineConfig::default() };
    let mut builder = EngineBuilder::with_config(lexicon, config);

    let sales = Table::from_rows(
        Schema::of(&[
            ("product", DataType::Str),
            ("quarter", DataType::Str),
            ("amount", DataType::Float),
        ]),
        vec![
            vec![Value::str("Aero Widget"), Value::str("Q1 2024"), Value::Float(1200.0)],
            vec![Value::str("Aero Widget"), Value::str("Q2 2024"), Value::Float(1500.0)],
            vec![Value::str("Nova Speaker"), Value::str("Q1 2024"), Value::Float(900.0)],
        ],
    )?;
    builder.add_table("sales", sales)?;
    builder.add_document(
        "press release",
        "Acme Corp launched the Aero Widget in January. The Aero Widget is \
         manufactured by Acme Corp at its Hamburg plant.",
        "news",
    );

    let (engine, _report) = builder.build();

    for question in [
        "What was the total sales amount of Aero Widget across all quarters?",
        "Which manufacturer makes the Aero Widget?",
        "What was the total sales of the Phantom Gizmo in Q2 2024?",
    ] {
        let answer = engine.answer(question);
        println!("Q: {question}");
        println!("A: {answer}");
        // The explain trace: ladder rungs attempted (with outcomes), the
        // synthesized plan, traversal stats, and the entropy verdict.
        let trace = answer.trace.as_ref().expect("EngineConfig::trace attaches one");
        println!("  route taken: {}", trace.route);
        for rung in &trace.rungs {
            println!("  rung {:<12} {:<9} {}", rung.rung, rung.outcome.label(), rung.detail);
        }
        if let Some(plan) = &trace.plan {
            println!("  plan: {plan}");
        }
        if let Some(t) = &trace.traversal {
            println!(
                "  traversal: {} anchors, {} nodes touched, {} chunks scored",
                t.anchors, t.nodes_touched, t.chunks_scored
            );
        }
        if let Some(e) = &trace.entropy {
            println!(
                "  entropy: {} samples -> {} clusters, confidence {:.2}, abstained={}",
                e.n_samples, e.n_clusters, e.confidence, e.abstained
            );
        }
        println!();
    }

    // The closed metric registry: every counter/gauge has a compile-time
    // name; the snapshot is deterministic for a given workload.
    let metrics = engine.metrics_report();
    println!("metrics snapshot (deterministic):");
    for name in ["query.answered", "query.abstained", "traverse.queries", "relstore.plans_executed"]
    {
        println!("  {name} = {}", metrics.get(name).unwrap_or(0));
    }

    // Wall-clock stage timings live in a *separate* report, so determinism
    // checks never see them.
    let timings = engine.timing_report();
    println!("\nstage timings (wall-clock, non-deterministic):\n{timings}");
    Ok(())
}
