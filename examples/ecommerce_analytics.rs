//! E-commerce data-lake analytics: the paper's §III.C motivating scenario.
//!
//! Generates a synthetic e-commerce lake (tables + JSON orders + review and
//! report documents), then runs the Multi-Entity QA pipeline over it —
//! including the paper's flagship question shape: "Compare the average
//! customer satisfaction ratings of products from different manufacturers
//! that had a sales increase of more than 15% in the last quarter."
//!
//! Run with:
//! ```sh
//! cargo run -p unisem-core --example ecommerce_analytics
//! ```

use unisem_core::{EngineBuilder, EngineConfig};
use unisem_workloads::{EcommerceConfig, EcommerceWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = EcommerceWorkload::generate(EcommerceConfig {
        products: 10,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 2,
        seed: 0xCAFE,
        name_offset: 0,
    });

    let mut builder = EngineBuilder::with_config(workload.lexicon.clone(), EngineConfig::default());
    for name in workload.db.table_names() {
        builder.add_table(name, workload.db.table(name)?.clone())?;
    }
    for coll in workload.semi.collections() {
        for doc in workload.semi.docs(coll) {
            builder.add_json(coll, doc.clone());
        }
    }
    for d in &workload.documents {
        builder.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    let (engine, _report) = builder.build();

    println!(
        "ingested: {} documents, {} tables, {} graph nodes\n",
        engine.docs().num_documents(),
        engine.db().len(),
        engine.graph().num_nodes()
    );

    // The workload's own benchmark questions, with gold answers shown.
    println!("--- benchmark questions ---");
    for item in workload.qa.iter().take(8) {
        let answer = engine.answer(&item.question);
        let ok = unisem_workloads::answer_matches(&item.gold, &answer.text);
        println!("[{}] {}", item.category.label(), item.question);
        println!("   -> {} {}", answer.text, if ok { "[correct]" } else { "[WRONG]" });
    }

    // Free-form analytical questions compiled to relational plans.
    println!("\n--- ad-hoc analytics ---");
    for q in [
        "Which products had a sales increase of more than 10% in Q2 2023?",
        "What is the average rating per product?",
        "How many orders are recorded?",
        "Show the top 3 products by sales",
    ] {
        let a = engine.answer(q);
        println!("Q: {q}\nA: {a}");
        if let Some(table) = &a.result_table {
            println!("{}", table.render(5));
        }
    }

    // Inspect the synthesized plan for one question.
    let intent = engine.analyze("What is the total sales amount in Q2 2023?");
    println!("--- parsed intent for a sample question ---\n{intent:#?}");
    Ok(())
}
