//! Semantic-entropy triage (§III.D): flagging unreliable answers.
//!
//! Demonstrates the paper's two §III.D vignettes: a well-grounded medical
//! question that clusters into one meaning (low entropy), and an ambiguous
//! legal question whose samples diverge into yes/no/conditional clusters
//! (high entropy → flag for human review).
//!
//! Run with:
//! ```sh
//! cargo run -p unisem-core --example uncertainty_triage
//! ```

use unisem_core::Slm;
use unisem_entropy::EntropyEstimator;
use unisem_slm::SupportedAnswer;

fn main() {
    let estimator = EntropyEstimator::new(Slm::default());

    // Vignette 1 (§III.D): "What are common influenza symptoms?" — the
    // evidence strongly supports one answer; paraphrases land in a single
    // semantic cluster.
    let flu_evidence = vec![
        SupportedAnswer::new("fever, cough and fatigue", 6.0),
        SupportedAnswer::new("fatigue and cough and fever", 4.0),
        SupportedAnswer::new("a sore throat", 0.4),
    ];
    let report = estimator.estimate("What are common influenza symptoms?", &flu_evidence);
    println!("medical question: {report:#?}");
    println!(
        "→ {} clusters over {} samples, discrete entropy {:.2}: RELIABLE\n",
        report.n_clusters, report.n_samples, report.discrete_semantic_entropy
    );

    // Vignette 2 (§III.D): "Can I be sued for sharing a photo on social
    // media?" — conflicting evidence yields yes/no/conditional clusters.
    let legal_evidence = vec![
        SupportedAnswer::new("yes, if the photo is copyrighted", 1.0),
        SupportedAnswer::new("no, unless consent is violated", 1.0),
        SupportedAnswer::new("it depends on the jurisdiction", 1.0),
    ];
    let report = estimator.estimate("Can I be sued for sharing a photo?", &legal_evidence);
    println!("legal question: {report:#?}");
    println!(
        "→ {} clusters over {} samples, discrete entropy {:.2}: FLAG FOR REVIEW\n",
        report.n_clusters, report.n_samples, report.discrete_semantic_entropy
    );

    // No evidence at all: the generator hallucinates divergent answers and
    // entropy exposes it.
    let report = estimator.estimate("What is the revenue forecast for 2031?", &[]);
    println!(
        "ungrounded question → {} clusters, entropy {:.2}: ABSTAIN",
        report.n_clusters, report.discrete_semantic_entropy
    );
}
