//! Quickstart: ingest three data modalities, ask questions across them.
//!
//! Run with:
//! ```sh
//! cargo run -p unisem-core --example quickstart
//! ```

use unisem_core::{EngineBuilder, EntityKind, Lexicon};
use unisem_relstore::{DataType, Schema, Table, Value};
use unisem_semistore::parse_json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The SLM's domain lexicon — the entities it "knows".
    let lexicon = Lexicon::new().with_entries([
        ("Aero Widget", EntityKind::Product),
        ("Nova Speaker", EntityKind::Product),
        ("Acme Corp", EntityKind::Organization),
    ]);
    let mut builder = EngineBuilder::new(lexicon);

    // 2. Structured: a relational sales table.
    let sales = Table::from_rows(
        Schema::of(&[
            ("product", DataType::Str),
            ("quarter", DataType::Str),
            ("amount", DataType::Float),
        ]),
        vec![
            vec![Value::str("Aero Widget"), Value::str("Q1 2024"), Value::Float(1200.0)],
            vec![Value::str("Aero Widget"), Value::str("Q2 2024"), Value::Float(1500.0)],
            vec![Value::str("Nova Speaker"), Value::str("Q1 2024"), Value::Float(900.0)],
            vec![Value::str("Nova Speaker"), Value::str("Q2 2024"), Value::Float(700.0)],
        ],
    )?;
    builder.add_table("sales", sales)?;

    // 3. Semi-structured: JSON order logs.
    builder.add_json(
        "orders",
        parse_json(r#"{"order_id": 1, "product": "Aero Widget", "units": 12}"#)?,
    );
    builder.add_json(
        "orders",
        parse_json(r#"{"order_id": 2, "product": "Nova Speaker", "units": 7}"#)?,
    );

    // 4. Unstructured: free-text documents.
    builder.add_document(
        "press release",
        "Acme Corp launched the Aero Widget in January. The Aero Widget is \
         manufactured by Acme Corp at its Hamburg plant.",
        "news",
    );
    builder.add_document(
        "q2 report",
        "In Q2 2024, Aero Widget sales increased 25% to $1500. Customer \
         feedback remained strongly positive.",
        "report",
    );

    // 5. Build: extraction, graph indexing, and retrievers are wired up.
    let (engine, _report) = builder.build();
    println!(
        "engine ready: {} docs, {} graph nodes, tables: {:?}\n",
        engine.docs().num_documents(),
        engine.graph().num_nodes(),
        engine.db().table_names(),
    );

    // 6. Ask questions spanning the modalities.
    for question in [
        // Analytical → operator synthesis over the sales table.
        "What was the total sales amount of Aero Widget across all quarters?",
        // Comparative → grouped aggregate, winner first.
        "Compare the total sales of Aero Widget and Nova Speaker: which product sold more?",
        // Lookup → topology-enhanced retrieval over text.
        "Which manufacturer makes the Aero Widget?",
        // Unanswerable → the engine abstains instead of hallucinating.
        "What was the total sales of the Phantom Gizmo in Q2 2024?",
    ] {
        let answer = engine.answer(question);
        println!("Q: {question}");
        println!("A: {answer}\n");
    }
    Ok(())
}
