#!/usr/bin/env bash
# Hermetic CI gate for the unisem workspace.
#
# Verifies the zero-dependency policy (DESIGN.md §7): the whole workspace
# must format-check, build, and test with the network hard-disabled, and no
# Cargo.toml may declare a dependency that is not a path dependency on
# another workspace crate.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> offline release build"
CARGO_NET_OFFLINE=true cargo build --release

echo "==> offline test suite (UNISEM_THREADS=1)"
CARGO_NET_OFFLINE=true UNISEM_THREADS=1 cargo test -q

echo "==> offline test suite (UNISEM_THREADS=4)"
# Same suite on a 4-wide parkit pool: any nondeterminism under parallelism
# (merge order, float association, RNG sharing) diverges here and fails.
CARGO_NET_OFFLINE=true UNISEM_THREADS=4 cargo test -q

echo "==> manifest scan: every dependency must be a path dependency"
# Inside [dependencies]/[dev-dependencies]/[build-dependencies] (including
# the [workspace.dependencies] table), every entry must either declare
# `path =` directly or inherit via `workspace = true` (the root
# [workspace.dependencies] table is scanned by the same rule, so inherited
# entries are transitively path-only). Version-only (`foo = "1.0"`), git,
# and registry deps all fail.
bad=0
while IFS= read -r manifest; do
    violations=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && /^[A-Za-z0-9_-]+[[:space:]]*=/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
                print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$violations" ]; then
        echo "$violations"
        bad=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$bad" -ne 0 ]; then
    echo "ERROR: non-path dependencies found (hermetic build policy)"
    exit 1
fi
echo "==> OK: workspace is hermetic"
