#!/usr/bin/env bash
# Hermetic CI gate for the unisem workspace.
#
# Verifies the zero-dependency policy (DESIGN.md §7): the whole workspace
# must format-check, build, and test with the network hard-disabled, and no
# Cargo.toml may declare a dependency that is not a path dependency on
# another workspace crate.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> offline release build"
CARGO_NET_OFFLINE=true cargo build --release

echo "==> offline test suite (UNISEM_THREADS=1)"
CARGO_NET_OFFLINE=true UNISEM_THREADS=1 cargo test -q

echo "==> offline test suite (UNISEM_THREADS=4)"
# Same suite on a 4-wide parkit pool: any nondeterminism under parallelism
# (merge order, float association, RNG sharing) diverges here and fails.
CARGO_NET_OFFLINE=true UNISEM_THREADS=4 cargo test -q

echo "==> integration suites under a pinned ambient fault plan"
# The robustness and determinism integration suites must hold with
# deterministic fault injection armed from the environment: faults
# quarantine or degrade (never panic), every downgrade is recorded, and
# answers replay byte-identically at any thread count. The spec pins the
# replay seed plus probabilistic faults at the executor and traversal
# sites, so both the structured and retrieval rungs get exercised.
CARGO_NET_OFFLINE=true UNISEM_FAULTS="seed:0xC1,relstore.exec@64,hetgraph.traverse@96" \
    cargo test -q -p unisem-tests --test robustness --test determinism

echo "==> unwrap audit (crates/core/src, crates/relstore/src)"
# Engine-core and relational-executor library code must stay panic-free on
# untrusted input: no .unwrap()/.expect( outside #[cfg(test)] modules.
# Comment lines (incl. doc examples) are ignored; tests keep their unwraps.
bad=0
while IFS= read -r src; do
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        /\.unwrap\(\)|\.expect\(/ { print FILENAME ":" FNR ": " $0 }
    ' "$src")
    if [ -n "$hits" ]; then
        echo "$hits"
        bad=1
    fi
done < <(find crates/core/src crates/relstore/src -name '*.rs')
if [ "$bad" -ne 0 ]; then
    echo "ERROR: unwrap()/expect() in non-test engine/executor code (return typed errors instead)"
    exit 1
fi

echo "==> manifest scan: every dependency must be a path dependency"
# Inside [dependencies]/[dev-dependencies]/[build-dependencies] (including
# the [workspace.dependencies] table), every entry must either declare
# `path =` directly or inherit via `workspace = true` (the root
# [workspace.dependencies] table is scanned by the same rule, so inherited
# entries are transitively path-only). Version-only (`foo = "1.0"`), git,
# and registry deps all fail.
bad=0
while IFS= read -r manifest; do
    violations=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && /^[A-Za-z0-9_-]+[[:space:]]*=/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
                print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$violations" ]; then
        echo "$violations"
        bad=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$bad" -ne 0 ]; then
    echo "ERROR: non-path dependencies found (hermetic build policy)"
    exit 1
fi
echo "==> OK: workspace is hermetic"
