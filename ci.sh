#!/usr/bin/env bash
# Hermetic CI gate for the unisem workspace.
#
# Verifies the zero-dependency policy (DESIGN.md §7): the whole workspace
# must format-check, build, and test with the network hard-disabled, and no
# Cargo.toml may declare a dependency that is not a path dependency on
# another workspace crate.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> offline release build"
CARGO_NET_OFFLINE=true cargo build --release

echo "==> offline test suite (UNISEM_THREADS=1)"
CARGO_NET_OFFLINE=true UNISEM_THREADS=1 cargo test -q

echo "==> offline test suite (UNISEM_THREADS=4)"
# Same suite on a 4-wide parkit pool: any nondeterminism under parallelism
# (merge order, float association, RNG sharing) diverges here and fails.
CARGO_NET_OFFLINE=true UNISEM_THREADS=4 cargo test -q

echo "==> integration suites under a pinned ambient fault plan"
# The robustness and determinism integration suites must hold with
# deterministic fault injection armed from the environment: faults
# quarantine or degrade (never panic), every downgrade is recorded, and
# answers replay byte-identically at any thread count. The spec pins the
# replay seed plus probabilistic faults at the executor and traversal
# sites, so both the structured and retrieval rungs get exercised.
CARGO_NET_OFFLINE=true UNISEM_FAULTS="seed:0xC1,relstore.exec@64,hetgraph.traverse@96" \
    cargo test -q -p unisem-tests --test robustness --test determinism

echo "==> observability gates (DESIGN.md §9)"
# Tracing must be zero-cost when disabled: the observability suite runs
# with the sink explicitly off and asserts — via the sink's own write
# counter, which counts every write_block call including no-ops — that the
# hot path makes zero trace-sink writes. Trace/metrics determinism across
# thread counts is covered by the determinism suite above.
CARGO_NET_OFFLINE=true UNISEM_TRACE=off \
    cargo test -q -p unisem-tests --test observability

echo "==> bench smoke (profile binary)"
# The per-stage profiler must keep producing well-formed detkit JSON lines;
# --smoke uses reduced workloads and writes nothing (the committed
# BENCH_baseline.json stays untouched).
profile_out=$(CARGO_NET_OFFLINE=true cargo run -q --release -p unisem-bench --bin profile -- --smoke 2>/dev/null)
lines=$(printf '%s\n' "$profile_out" | grep -c '"suite":"profile"')
if [ "$lines" -lt 18 ]; then
    echo "ERROR: profile --smoke emitted $lines stage lines (expected >= 18)"
    exit 1
fi

echo "==> closed-namespace audit (degradation labels, metric names)"
# Degradation components and metric names form one closed namespace
# (tracekit::component / tracekit::Metric). Non-test engine code must pass
# registry constants, never string literals — a literal compiles today and
# silently forks the namespace tomorrow. Metric recording calls take enum
# variants by construction; a string argument means someone is routing
# around the registry (e.g. via from_name), so it fails too.
bad=0
while IFS= read -r src; do
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        /Degradation::new\("/ { print FILENAME ":" FNR ": " $0 }
        /\.(incr|add|set|observe|record_stage)\("/ { print FILENAME ":" FNR ": " $0 }
        /from_name\((format!|&format!|String)/ { print FILENAME ":" FNR ": " $0 }
    ' "$src")
    if [ -n "$hits" ]; then
        echo "$hits"
        bad=1
    fi
done < <(find crates/core/src crates/retrieval/src crates/relstore/src crates/hetgraph/src -name '*.rs')
if [ "$bad" -ne 0 ]; then
    echo "ERROR: closed-namespace violation (use tracekit::component / Metric enum constants)"
    exit 1
fi

echo "==> unwrap audit (crates/core/src, crates/relstore/src)"
# Engine-core and relational-executor library code must stay panic-free on
# untrusted input: no .unwrap()/.expect( outside #[cfg(test)] modules.
# Comment lines (incl. doc examples) are ignored; tests keep their unwraps.
bad=0
while IFS= read -r src; do
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        /\.unwrap\(\)|\.expect\(/ { print FILENAME ":" FNR ": " $0 }
    ' "$src")
    if [ -n "$hits" ]; then
        echo "$hits"
        bad=1
    fi
done < <(find crates/core/src crates/relstore/src -name '*.rs')
if [ "$bad" -ne 0 ]; then
    echo "ERROR: unwrap()/expect() in non-test engine/executor code (return typed errors instead)"
    exit 1
fi

echo "==> manifest scan: every dependency must be a path dependency"
# Inside [dependencies]/[dev-dependencies]/[build-dependencies] (including
# the [workspace.dependencies] table), every entry must either declare
# `path =` directly or inherit via `workspace = true` (the root
# [workspace.dependencies] table is scanned by the same rule, so inherited
# entries are transitively path-only). Version-only (`foo = "1.0"`), git,
# and registry deps all fail.
bad=0
while IFS= read -r manifest; do
    violations=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && /^[A-Za-z0-9_-]+[[:space:]]*=/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
                print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$violations" ]; then
        echo "$violations"
        bad=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$bad" -ne 0 ]; then
    echo "ERROR: non-path dependencies found (hermetic build policy)"
    exit 1
fi
echo "==> OK: workspace is hermetic"
