#!/usr/bin/env bash
# Hermetic CI gate for the unisem workspace.
#
# Verifies the zero-dependency policy (DESIGN.md §7): the whole workspace
# must format-check, build, and test with the network hard-disabled — and
# the determinism contract must hold statically: udlint (crates/lintkit)
# lexes every engine source and audits panics, hash-order iteration,
# wall-clock reads, raw threads, the closed metric namespace, env reads,
# and path-only manifests. See DESIGN.md §10.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> offline release build"
CARGO_NET_OFFLINE=true cargo build --release

echo "==> offline test suite (UNISEM_THREADS=1)"
CARGO_NET_OFFLINE=true UNISEM_THREADS=1 cargo test -q

echo "==> offline test suite (UNISEM_THREADS=4)"
# Same suite on a 4-wide parkit pool: any nondeterminism under parallelism
# (merge order, float association, RNG sharing) diverges here and fails.
CARGO_NET_OFFLINE=true UNISEM_THREADS=4 cargo test -q

echo "==> integration suites under a pinned ambient fault plan"
# The robustness and determinism integration suites must hold with
# deterministic fault injection armed from the environment: faults
# quarantine or degrade (never panic), every downgrade is recorded, and
# answers replay byte-identically at any thread count. The spec pins the
# replay seed plus probabilistic faults at the executor and traversal
# sites, so both the structured and retrieval rungs get exercised.
CARGO_NET_OFFLINE=true UNISEM_FAULTS="seed:0xC1,relstore.exec@64,hetgraph.traverse@96" \
    cargo test -q -p unisem-tests --test robustness --test determinism

echo "==> planner-diff gate: differential + golden explain plans (DESIGN.md §11)"
# The cost-based planner must produce byte-identical answers to the legacy
# degradation ladder (its differential-testing oracle) for every workload
# query, at 1 and 4 threads, with and without the pinned fault plan — and
# the optimized explain plans must match the committed golden snapshots
# byte-for-byte (bless intentional changes with UNISEM_BLESS=1). Both
# suites pin their fault plans programmatically, so arming the ambient
# plan here only widens the build-time surface they run under.
CARGO_NET_OFFLINE=true UNISEM_FAULTS="seed:0xC1,relstore.exec@64,hetgraph.traverse@96" \
    cargo test -q -p unisem-tests --test planner_diff --test planner_golden

echo "==> observability gates (DESIGN.md §9)"
# Tracing must be zero-cost when disabled: the observability suite runs
# with the sink explicitly off and asserts — via the sink's own write
# counter, which counts every write_block call including no-ops — that the
# hot path makes zero trace-sink writes. Trace/metrics determinism across
# thread counts is covered by the determinism suite above.
CARGO_NET_OFFLINE=true UNISEM_TRACE=off \
    cargo test -q -p unisem-tests --test observability

echo "==> storage gate: snapshot round-trip + golden page images (DESIGN.md §12)"
# The persistent-storage suite must hold with an ambient store-site fault
# plan armed: every test pins its own plan programmatically (disabled for
# the byte-identity checks, explicit matrices for crash consistency), so
# the ambient plan proves independence, not behavior. Covers: reopened
# engines answering byte-identically at 1/2/4/8 threads, byte-stable
# snapshot files across build thread counts, the golden page-image table
# (bless with UNISEM_BLESS=1), the torn-page/failed-flush fault matrix,
# and typed rejection of corrupt or truncated snapshots.
CARGO_NET_OFFLINE=true UNISEM_FAULTS="seed:0xC1,store.page_write@64,store.flush@64" \
    cargo test -q -p unisem-tests --test storage
CARGO_NET_OFFLINE=true cargo test -q -p storekit

echo "==> recovery gate: WAL crash matrix (DESIGN.md §13)"
# The crash-recovery suite must hold with an ambient wal-site fault plan
# armed: every scenario pins its own plan programmatically (disabled for
# references and recoveries, single-site arms for the crash boundaries),
# so the ambient plan proves independence. Covers: torn-append and
# lost-flush crashes at every WAL record boundary recovering to
# byte-identical answers at 1/2/4/8 threads, both mid-checkpoint crash
# windows, byte-identical WAL segments across thread counts, and
# post-delta planner statistics freshness.
CARGO_NET_OFFLINE=true UNISEM_FAULTS="seed:0xC1,wal.append@64,wal.flush@64" \
    cargo test -q -p unisem-tests --test recovery
CARGO_NET_OFFLINE=true cargo test -q -p faultkit

echo "==> bench smoke (profile binary)"
# The per-stage profiler must keep producing well-formed detkit JSON lines;
# --smoke uses reduced workloads and writes nothing (the committed
# BENCH_baseline.json stays untouched).
profile_out=$(CARGO_NET_OFFLINE=true cargo run -q --release -p unisem-bench --bin profile -- --smoke 2>/dev/null)
lines=$(printf '%s\n' "$profile_out" | grep -c '"suite":"profile"')
if [ "$lines" -lt 18 ]; then
    echo "ERROR: profile --smoke emitted $lines stage lines (expected >= 18)"
    exit 1
fi

echo "==> bench smoke (scalebench binary)"
# The serving-scale macro-bench must keep producing well-formed JSON rows
# with nonzero throughput and latency quantiles; --smoke uses one small
# tier at 1 and 2 threads and writes nothing (the committed
# BENCH_scale.json stays untouched).
scale_out=$(CARGO_NET_OFFLINE=true cargo run -q --release -p unisem-bench --bin scalebench -- --smoke 2>/dev/null)
rows=$(printf '%s\n' "$scale_out" | grep -c '"suite":"scale"')
if [ "$rows" -lt 2 ]; then
    echo "ERROR: scalebench --smoke emitted $rows rows (expected >= 2)"
    exit 1
fi
# Quantile checks apply to the scale rows only: any stray diagnostic line
# on stdout would trivially "lack" qps and fail the inverted grep, so
# filter to the suite's own rows before asserting shape.
scale_rows=$(printf '%s\n' "$scale_out" | grep '"suite":"scale"')
if printf '%s\n' "$scale_rows" | grep -vq '"qps":[1-9]'; then
    echo "ERROR: scalebench --smoke produced a row without nonzero qps"
    printf '%s\n' "$scale_rows"
    exit 1
fi
if printf '%s\n' "$scale_rows" | grep -vq '"p99_ns":[1-9]'; then
    echo "ERROR: scalebench --smoke produced a row without a nonzero p99"
    printf '%s\n' "$scale_rows"
    exit 1
fi

echo "==> udlint --deny all (static determinism-contract audit)"
# One linter replaces the former awk gates (closed metric namespace,
# unwrap audit, path-only manifests) and adds the lints awk could not
# express. Token passes catch per-line hazards (hash-order iteration,
# wall-clock reads outside tracekit::wall, raw thread spawns, env reads
# outside the UNISEM_* surface); the semantic passes parse every crate,
# build the workspace symbol/call graph, and enforce the cross-file
# contracts (transitive-wallclock, uncovered-io-site, dead-registry-entry,
# meter-mirror). `udlint --list` names every lint, `udlint --explain
# <lint>` documents each one; suppressions need
# `// udlint: allow(<lint>) -- <reason>` and are budgeted below.
CARGO_NET_OFFLINE=true cargo run -q --release -p lintkit --bin udlint -- --deny all

echo "==> udlint determinism gate (byte-identical JSON across runs)"
# The semantic passes walk a call graph; any hash-order or traversal-order
# leak in the analysis itself would show up as report churn. Two full
# runs must render byte-identical JSON — same guarantee CI relies on to
# diff reports across machines.
report_a=$(CARGO_NET_OFFLINE=true cargo run -q --release -p lintkit --bin udlint -- --deny all --format json)
report_b=$(CARGO_NET_OFFLINE=true cargo run -q --release -p lintkit --bin udlint -- --deny all --format json)
if [ "$report_a" != "$report_b" ]; then
    echo "ERROR: udlint JSON report differs between two runs over the same tree"
    diff <(printf '%s\n' "$report_a") <(printf '%s\n' "$report_b") || true
    exit 1
fi

echo "==> suppression budget meta-gate"
# The committed budget (lint-budget.txt) is the ceiling on active
# `udlint: allow` suppressions. New suppressions fail CI until the budget
# is raised in the same review — so the count can only grow deliberately,
# and only shrinking it is frictionless. udlint prints the bare count as
# the last line of stdout; tail -n1 keeps the gate immune to any cargo
# noise that lands ahead of it.
budget=$(tr -d '[:space:]' < lint-budget.txt)
count=$(CARGO_NET_OFFLINE=true cargo run -q --release -p lintkit --bin udlint -- --suppressions | tail -n1)
if [ "$count" -gt "$budget" ]; then
    echo "ERROR: $count udlint suppressions exceed the committed budget of $budget"
    echo "       (fix the findings, or raise lint-budget.txt under review)"
    exit 1
fi
echo "==> OK: workspace is hermetic ($count/$budget suppressions in use)"
